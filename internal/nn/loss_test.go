package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestCrossEntropyKnownValue(t *testing.T) {
	ce := NewCrossEntropy()
	ctx := detCtx()
	// uniform logits → loss = log(K)
	logits := tensor.New(2, 4)
	loss := ce.Forward(ctx, logits, []int{0, 3})
	if math.Abs(float64(loss)-math.Log(4)) > 1e-5 {
		t.Fatalf("uniform CE loss = %v, want %v", loss, math.Log(4))
	}
}

func TestCrossEntropyGradNumerical(t *testing.T) {
	ce := NewCrossEntropy()
	ctx := detCtx()
	logits := randTensor(30, 3, 5)
	labels := []int{1, 4, 0}
	ce.Forward(ctx, logits, labels)
	grad := ce.Backward(ctx)
	const eps = 1e-2
	for _, i := range []int{0, 4, 7, 14} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp := float64(NewCrossEntropy().Forward(ctx, logits, labels))
		logits.Data[i] = orig - eps
		lm := float64(NewCrossEntropy().Forward(ctx, logits, labels))
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 2e-2*(math.Abs(num)+1) {
			t.Fatalf("CE grad[%d] = %v, numerical %v", i, grad.Data[i], num)
		}
	}
}

func TestCrossEntropyGradRowsSumToZero(t *testing.T) {
	ce := NewCrossEntropy()
	ctx := detCtx()
	logits := randTensor(31, 4, 6)
	ce.Forward(ctx, logits, []int{0, 1, 2, 3})
	grad := ce.Backward(ctx)
	for r := 0; r < 4; r++ {
		var sum float64
		for c := 0; c < 6; c++ {
			sum += float64(grad.At(r, c))
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("CE grad row %d sums to %v, want 0", r, sum)
		}
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCrossEntropy().Forward(detCtx(), tensor.New(1, 3), []int{5})
}

func TestMSEKnownValueAndGrad(t *testing.T) {
	m := NewMSE()
	ctx := detCtx()
	pred := tensor.FromData([]float32{1, 2, 3, 4}, 4)
	target := tensor.FromData([]float32{0, 2, 3, 6}, 4)
	loss := m.Forward(ctx, pred, target)
	if math.Abs(float64(loss)-1.25) > 1e-6 { // (1+0+0+4)/4
		t.Fatalf("MSE loss = %v, want 1.25", loss)
	}
	grad := m.Backward(ctx)
	// dL/dpred = 2(pred-target)/N
	want := []float32{0.5, 0, 0, -1}
	for i, w := range want {
		if math.Abs(float64(grad.Data[i]-w)) > 1e-6 {
			t.Fatalf("MSE grad[%d] = %v, want %v", i, grad.Data[i], w)
		}
	}
}

func TestBCEWithLogitsKnownValue(t *testing.T) {
	b := NewBCEWithLogits()
	ctx := detCtx()
	// logit 0 → sigmoid 0.5 → loss -log(0.5) regardless of target 0/1
	logits := tensor.New(2)
	target := tensor.FromData([]float32{1, 0}, 2)
	loss := b.Forward(ctx, logits, target)
	if math.Abs(float64(loss)-math.Log(2)) > 1e-5 {
		t.Fatalf("BCE loss = %v, want %v", loss, math.Log(2))
	}
	grad := b.Backward(ctx)
	// (sigmoid - target)/N = (0.5-1)/2, (0.5-0)/2
	if math.Abs(float64(grad.Data[0]+0.25)) > 1e-6 || math.Abs(float64(grad.Data[1]-0.25)) > 1e-6 {
		t.Fatalf("BCE grad = %v", grad.Data)
	}
}

func TestBCEGradNumerical(t *testing.T) {
	ctx := detCtx()
	logits := randTensor(32, 6)
	target := tensor.FromData([]float32{1, 0, 1, 1, 0, 0}, 6)
	b := NewBCEWithLogits()
	b.Forward(ctx, logits, target)
	grad := b.Backward(ctx)
	const eps = 1e-2
	for _, i := range []int{0, 2, 5} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp := float64(NewBCEWithLogits().Forward(ctx, logits, target))
		logits.Data[i] = orig - eps
		lm := float64(NewBCEWithLogits().Forward(ctx, logits, target))
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 2e-2*(math.Abs(num)+1) {
			t.Fatalf("BCE grad[%d] = %v, numerical %v", i, grad.Data[i], num)
		}
	}
}

func TestLossBackwardWithoutForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCrossEntropy().Backward(detCtx())
}
