package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Residual wraps a body with an identity skip connection: y = x + body(x).
// The body must preserve the input shape.
type Residual struct {
	Body Layer
}

// NewResidual constructs a residual block.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// Forward computes x + body(x).
func (r *Residual) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	y := r.Body.Forward(ctx, x)
	shapeCheck(tensor.SameShape(x, y), "Residual: body changed shape %v → %v", x.Shape(), y.Shape())
	// Clone rather than mutate y: activations may cache their output tensor.
	sum := ctx.clone(y)
	sum.AddInPlace(x)
	return sum
}

// Backward adds the skip gradient to the body gradient.
func (r *Residual) Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor {
	// Clone rather than mutate: the body may return a view of grad (Flatten).
	dx := ctx.clone(r.Body.Backward(ctx, grad))
	dx.AddInPlace(grad)
	return dx
}

// Params returns the body parameters.
func (r *Residual) Params() []*Parameter { return r.Body.Params() }

// StateTensors exposes the body's stateful buffers, if any.
func (r *Residual) StateTensors() []*tensor.Tensor {
	if st, ok := r.Body.(Stateful); ok {
		return st.StateTensors()
	}
	return nil
}

// MeanPool averages a [B, L, D] sequence over L, yielding [B, D] — the
// pooling used by the transformer classification heads.
type MeanPool struct {
	b, l, d int
}

// NewMeanPool constructs a sequence mean pool.
func NewMeanPool() *MeanPool { return &MeanPool{} }

// Forward averages over the sequence dimension.
func (m *MeanPool) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	shapeCheck(x.Rank() == 3, "MeanPool: want [B,L,D], got %v", x.Shape())
	m.b, m.l, m.d = x.Dim(0), x.Dim(1), x.Dim(2)
	ctx.Dev.ChargeFLOPs(float64(x.Size()), 1)
	y := ctx.newTensor(m.b, m.d) // zeroed: sequence positions accumulate
	inv := 1 / float32(m.l)
	for bi := 0; bi < m.b; bi++ {
		for li := 0; li < m.l; li++ {
			row := x.Data[(bi*m.l+li)*m.d : (bi*m.l+li+1)*m.d]
			out := y.Data[bi*m.d : (bi+1)*m.d]
			for j, v := range row {
				out[j] += v * inv
			}
		}
	}
	return y
}

// Backward spreads the gradient uniformly over the sequence.
func (m *MeanPool) Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor {
	shapeCheck(m.l > 0 && grad.Size() == m.b*m.d, "MeanPool backward without matching forward")
	dx := ctx.newTensorUninit(m.b, m.l, m.d)
	inv := 1 / float32(m.l)
	for bi := 0; bi < m.b; bi++ {
		g := grad.Data[bi*m.d : (bi+1)*m.d]
		for li := 0; li < m.l; li++ {
			out := dx.Data[(bi*m.l+li)*m.d : (bi*m.l+li+1)*m.d]
			for j, v := range g {
				out[j] = v * inv
			}
		}
	}
	return dx
}

// Params returns nil.
func (m *MeanPool) Params() []*Parameter { return nil }

// PatchEmbed splits an NCHW image into non-overlapping P×P patches and
// linearly projects each to D dimensions: [B,C,H,W] → [B, (H/P)(W/P), D].
// This is the Swin-style patch embedding.
type PatchEmbed struct {
	C, P, D int
	Proj    *Linear

	b, h, w int
}

// NewPatchEmbed constructs the patch embedding.
func NewPatchEmbed(c, p, d int, init *rng.Stream) *PatchEmbed {
	return &PatchEmbed{C: c, P: p, D: d, Proj: NewLinear(c*p*p, d, true, init)}
}

// patchify rearranges [B,C,H,W] into [B·L, C·P·P] rows.
func (pe *PatchEmbed) patchify(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	ph, pw := h/pe.P, w/pe.P
	out := ctx.newTensorUninit(b*ph*pw, c*pe.P*pe.P)
	row := 0
	for bi := 0; bi < b; bi++ {
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				k := 0
				for ci := 0; ci < c; ci++ {
					for dy := 0; dy < pe.P; dy++ {
						for dx := 0; dx < pe.P; dx++ {
							out.Data[row*c*pe.P*pe.P+k] = x.At(bi, ci, py*pe.P+dy, px*pe.P+dx)
							k++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// Forward patchifies and projects.
func (pe *PatchEmbed) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	shapeCheck(x.Rank() == 4 && x.Dim(1) == pe.C && x.Dim(2)%pe.P == 0 && x.Dim(3)%pe.P == 0,
		"PatchEmbed: input %v incompatible with C=%d P=%d", x.Shape(), pe.C, pe.P)
	pe.b, pe.h, pe.w = x.Dim(0), x.Dim(2), x.Dim(3)
	patches := pe.patchify(ctx, x)
	y := pe.Proj.Forward(ctx, patches)
	l := (pe.h / pe.P) * (pe.w / pe.P)
	return y.Reshape(pe.b, l, pe.D)
}

// Backward projects the gradient back and un-patchifies it.
func (pe *PatchEmbed) Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor {
	shapeCheck(pe.b > 0, "PatchEmbed backward without matching forward")
	l := (pe.h / pe.P) * (pe.w / pe.P)
	dpatches := pe.Proj.Backward(ctx, grad.Reshape(pe.b*l, pe.D))
	dx := ctx.newTensorUninit(pe.b, pe.C, pe.h, pe.w)
	ph, pw := pe.h/pe.P, pe.w/pe.P
	row := 0
	for bi := 0; bi < pe.b; bi++ {
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				k := 0
				for ci := 0; ci < pe.C; ci++ {
					for dy := 0; dy < pe.P; dy++ {
						for dx2 := 0; dx2 < pe.P; dx2++ {
							dx.Set(dpatches.At(row, k), bi, ci, py*pe.P+dy, px*pe.P+dx2)
							k++
						}
					}
				}
				row++
			}
		}
	}
	return dx
}

// Params returns the projection parameters.
func (pe *PatchEmbed) Params() []*Parameter { return pe.Proj.Params() }
