// Package nn implements the neural-network layers, containers, and losses of
// the EasyScale training stack.
//
// Layers follow the explicit forward/backward module design: Forward caches
// whatever activations Backward needs, and Backward both returns the input
// gradient and accumulates parameter gradients. The caches correspond to the
// paper's "temporal tensors and activations" — created in the forward pass,
// destroyed after gradient generation — which is why EasyScale can constrain
// an EST's time slice to one mini-batch and avoid swapping them.
//
// Every reduction and GEMM goes through the device handle in the Context, so
// the accumulation order (and hence bitwise determinism across GPU types and
// kernel-selection policies) is controlled in exactly one place.
package nn

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Context carries the per-step execution environment through a layer stack.
type Context struct {
	Dev      *device.Device
	RNG      *rng.Stream // framework RNG: dropout masks, any stochastic op
	Training bool
	// Scratch, when non-nil, supplies pooled buffers for activations and
	// gradients whose lifetime ends at the surrounding step boundary (the
	// owner calls ReleaseAll). Buffer reuse cannot perturb numerics — every
	// layer zeroes or fully overwrites its scratch — so a nil Scratch (plain
	// GC allocation, used by evaluation) is bitwise-equivalent.
	Scratch *pool.Scope
}

// newTensor returns a zero-filled step-scoped tensor.
func (c *Context) newTensor(shape ...int) *tensor.Tensor {
	return tensor.NewScoped(c.Scratch, shape...)
}

// newTensorUninit returns a step-scoped tensor with arbitrary contents, for
// outputs every element of which is written before being read.
func (c *Context) newTensorUninit(shape ...int) *tensor.Tensor {
	return tensor.NewScopedUninit(c.Scratch, shape...)
}

// clone returns a step-scoped deep copy of t.
func (c *Context) clone(t *tensor.Tensor) *tensor.Tensor {
	return t.CloneScoped(c.Scratch)
}

// Parameter is a trainable tensor with its gradient accumulator.
type Parameter struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParameter allocates a parameter and its zeroed gradient.
func NewParameter(name string, value *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable module.
type Layer interface {
	// Forward computes the layer output and caches what Backward needs.
	Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor
	// Backward consumes the output gradient, accumulates parameter
	// gradients, and returns the input gradient.
	Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Parameter
}

// Stateful is implemented by layers with non-trainable state that must be
// checkpointed for determinism — the paper's "implicit framework states",
// e.g. BatchNorm running statistics.
type Stateful interface {
	// StateTensors returns the mutable state buffers in a stable order.
	StateTensors() []*tensor.Tensor
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the layers in order.
func (s *Sequential) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(ctx, x)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(ctx, grad)
	}
	return grad
}

// Params concatenates the parameters of all layers in order.
func (s *Sequential) Params() []*Parameter {
	var out []*Parameter
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// StateTensors concatenates the stateful buffers of all layers in order.
func (s *Sequential) StateTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		if st, ok := l.(Stateful); ok {
			out = append(out, st.StateTensors()...)
		}
	}
	return out
}

// Flatten reshapes [B, ...] to [B, prod(...)].
type Flatten struct {
	inShape []int
}

// NewFlatten builds a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the leading dimension.
func (f *Flatten) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(ctx *Context, grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Parameter { return nil }

// KaimingInit fills t with Kaiming-normal values for the given fan-in, drawn
// from the provided stream. Initialization order is fixed by the flat index,
// so identical seeds give bitwise identical parameters.
func KaimingInit(t *tensor.Tensor, fanIn int, s *rng.Stream) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = s.NormFloat32() * std
	}
}

// XavierInit fills t with Xavier-uniform values.
func XavierInit(t *tensor.Tensor, fanIn, fanOut int, s *rng.Stream) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range t.Data {
		t.Data[i] = (s.Float32()*2 - 1) * limit
	}
}

// reduceSum routes a reduction through the device policy: blocked fixed-order
// when deterministic kernels are enforced, atomics otherwise.
func reduceSum(ctx *Context, xs []float32) float32 {
	if ctx.Dev.DeterministicKernels() {
		return kernels.SumBlocked(xs, ctx.Dev.KernelBlock())
	}
	return kernels.SumAtomic(xs, ctx.Dev.AtomicWorkers())
}

// reduceMeanVar routes BatchNorm statistics through the device policy.
func reduceMeanVar(ctx *Context, xs []float32) (mean, variance float32) {
	if ctx.Dev.DeterministicKernels() {
		return kernels.MeanVar(xs, ctx.Dev.KernelBlock())
	}
	return kernels.MeanVarAtomic(xs, ctx.Dev.AtomicWorkers())
}

// gemm routes C = A·B through the device policy: fixed-kc blocked kernels
// when deterministic, split-K atomics otherwise. Charges simulated time.
func gemm(ctx *Context, dst, a, b []float32, m, k, n int) {
	ctx.Dev.ChargeFLOPs(2*float64(m)*float64(k)*float64(n), ctx.Dev.GemmEfficiency())
	if ctx.Dev.DeterministicKernels() {
		kernels.MatMulParallel(dst, a, b, m, k, n, ctx.Dev.KernelBlock())
		return
	}
	kernels.MatMulAtomicSplitK(dst, a, b, m, k, n, ctx.Dev.AtomicWorkers())
}

func gemmATB(ctx *Context, dst, a, b []float32, m, k, n int) {
	ctx.Dev.ChargeFLOPs(2*float64(m)*float64(k)*float64(n), ctx.Dev.GemmEfficiency())
	kernels.MatMulATBParallel(dst, a, b, m, k, n, ctx.Dev.KernelBlock())
}

func gemmABT(ctx *Context, dst, a, b []float32, m, k, n int) {
	ctx.Dev.ChargeFLOPs(2*float64(m)*float64(k)*float64(n), ctx.Dev.GemmEfficiency())
	kernels.MatMulABTParallel(dst, a, b, m, k, n, ctx.Dev.KernelBlock())
}

func shapeCheck(cond bool, format string, args ...any) {
	if !cond {
		panic("nn: " + fmt.Sprintf(format, args...))
	}
}
