package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestResidualForwardAddsSkip(t *testing.T) {
	// body = identity-ish: Linear initialized to zero weight → body(x)=bias=0
	body := NewLinear(4, 4, true, nil)
	body.W.Value.Zero()
	r := NewResidual(body)
	x := randTensor(40, 3, 4)
	y := r.Forward(detCtx(), x)
	if !y.Equal(x) {
		t.Fatal("zero body residual must be identity")
	}
}

func TestResidualGradients(t *testing.T) {
	init := rng.New(41)
	body := NewSequential(NewLinear(5, 5, true, init), NewTanh())
	checkLayerGrads(t, NewResidual(body), randTensor(42, 3, 5), 1e-2, 3e-2)
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResidual(NewLinear(4, 3, true, rng.New(1))).Forward(detCtx(), randTensor(43, 2, 4))
}

func TestResidualStateTensors(t *testing.T) {
	r := NewResidual(NewSequential(NewConv2D(2, 2, 3, 1, 1, false, rng.New(1)), NewBatchNorm2D(2)))
	if len(r.StateTensors()) != 2 {
		t.Fatal("residual should surface body state tensors")
	}
	if NewResidual(NewReLU()).StateTensors() != nil {
		t.Fatal("stateless body should have no state tensors")
	}
}

func TestMeanPoolForward(t *testing.T) {
	m := NewMeanPool()
	x := tensor.FromData([]float32{1, 2, 3, 4, 5, 6}, 1, 3, 2) // rows (1,2),(3,4),(5,6)
	y := m.Forward(detCtx(), x)
	if y.At(0, 0) != 3 || y.At(0, 1) != 4 {
		t.Fatalf("meanpool: %v", y.Data)
	}
}

func TestMeanPoolGradients(t *testing.T) {
	checkLayerGrads(t, NewMeanPool(), randTensor(44, 2, 4, 3), 1e-2, 2e-2)
}

func TestPatchEmbedShapes(t *testing.T) {
	pe := NewPatchEmbed(3, 2, 8, rng.New(45))
	y := pe.Forward(detCtx(), randTensor(46, 2, 3, 4, 4))
	if y.Dim(0) != 2 || y.Dim(1) != 4 || y.Dim(2) != 8 {
		t.Fatalf("patch embed shape %v", y.Shape())
	}
}

func TestPatchEmbedGradients(t *testing.T) {
	pe := NewPatchEmbed(2, 2, 4, rng.New(47))
	checkLayerGrads(t, pe, randTensor(48, 2, 2, 4, 4), 1e-2, 3e-2)
}

func TestPatchEmbedRoundTripStructure(t *testing.T) {
	// With an identity-like projection (square, identity matrix), patchify
	// then backward of ones must scatter gradients to every input pixel once.
	pe := NewPatchEmbed(1, 2, 4, nil)
	pe.Proj.W.Value.Zero()
	for i := 0; i < 4; i++ {
		pe.Proj.W.Value.Set(1, i, i)
	}
	ctx := detCtx()
	x := randTensor(49, 1, 1, 4, 4)
	y := pe.Forward(ctx, x)
	// identity projection: output values are a permutation of input values
	sumIn, sumOut := 0.0, 0.0
	for _, v := range x.Data {
		sumIn += float64(v)
	}
	for _, v := range y.Data {
		sumOut += float64(v)
	}
	if math.Abs(sumIn-sumOut) > 1e-4 {
		t.Fatalf("identity patch embed should conserve sum: %v vs %v", sumIn, sumOut)
	}
	dx := pe.Backward(ctx, tensor.Full(1, 1, 4, 4))
	for _, v := range dx.Data {
		if v != 1 {
			t.Fatalf("each pixel should receive exactly one unit of gradient, got %v", v)
		}
	}
}
