package nn

import (
	"math"

	"repro/internal/pool"
	"repro/internal/tensor"
)

// CrossEntropy is softmax cross-entropy with mean reduction over the batch.
// The mean reduction goes through the device reduction policy, so even the
// scalar loss value is sensitive to kernel determinism — which is why the
// paper compares loss curves bitwise.
type CrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewCrossEntropy constructs the loss.
func NewCrossEntropy() *CrossEntropy { return &CrossEntropy{} }

// Forward computes mean(-log softmax(logits)[label]) for logits [B, K].
func (ce *CrossEntropy) Forward(ctx *Context, logits *tensor.Tensor, labels []int) float32 {
	shapeCheck(logits.Rank() == 2 && logits.Dim(0) == len(labels), "CrossEntropy: logits %v vs %d labels", logits.Shape(), len(labels))
	b, k := logits.Dim(0), logits.Dim(1)
	ctx.Dev.ChargeFLOPs(5*float64(logits.Size()), 1)
	ce.probs = ctx.newTensorUninit(b, k)
	ce.labels = append(ce.labels[:0], labels...)
	losses := pool.GetUninit(b)
	for r := 0; r < b; r++ {
		row := logits.Data[r*k : (r+1)*k]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float32
		prow := ce.probs.Data[r*k : (r+1)*k]
		for c, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			prow[c] = e
			sum += e
		}
		inv := 1 / sum
		for c := range prow {
			prow[c] *= inv
		}
		lbl := labels[r]
		shapeCheck(lbl >= 0 && lbl < k, "CrossEntropy: label %d out of range %d", lbl, k)
		losses[r] = -float32(math.Log(float64(prow[lbl]) + 1e-12))
	}
	loss := reduceSum(ctx, losses) / float32(b)
	pool.Put(losses)
	return loss
}

// Backward returns dL/dlogits = (softmax − onehot)/B.
func (ce *CrossEntropy) Backward(ctx *Context) *tensor.Tensor {
	shapeCheck(ce.probs != nil, "CrossEntropy backward without matching forward")
	b, k := ce.probs.Dim(0), ce.probs.Dim(1)
	grad := ctx.clone(ce.probs)
	inv := 1 / float32(b)
	for r := 0; r < b; r++ {
		grad.Data[r*k+ce.labels[r]] -= 1
		for c := 0; c < k; c++ {
			grad.Data[r*k+c] *= inv
		}
	}
	ce.probs = nil
	return grad
}

// MSE is mean squared error with mean reduction.
type MSE struct {
	diff *tensor.Tensor
}

// NewMSE constructs the loss.
func NewMSE() *MSE { return &MSE{} }

// Forward computes mean((pred − target)²).
func (m *MSE) Forward(ctx *Context, pred, target *tensor.Tensor) float32 {
	shapeCheck(pred.Size() == target.Size(), "MSE: pred %v vs target %v", pred.Shape(), target.Shape())
	ctx.Dev.ChargeFLOPs(3*float64(pred.Size()), 1)
	m.diff = ctx.newTensorUninit(pred.Shape()...)
	sq := pool.GetUninit(pred.Size())
	for i, pv := range pred.Data {
		d := pv - target.Data[i]
		m.diff.Data[i] = d
		sq[i] = d * d
	}
	loss := reduceSum(ctx, sq) / float32(pred.Size())
	pool.Put(sq)
	return loss
}

// Backward returns 2(pred − target)/N.
func (m *MSE) Backward(ctx *Context) *tensor.Tensor {
	shapeCheck(m.diff != nil, "MSE backward without matching forward")
	g := ctx.clone(m.diff)
	g.ScaleInPlace(2 / float32(g.Size()))
	m.diff = nil
	return g
}

// BCEWithLogits is binary cross-entropy over logits with mean reduction,
// used by the recommendation workload (NeuMF).
type BCEWithLogits struct {
	sig    *tensor.Tensor
	target *tensor.Tensor
}

// NewBCEWithLogits constructs the loss.
func NewBCEWithLogits() *BCEWithLogits { return &BCEWithLogits{} }

// Forward computes mean BCE of sigmoid(logits) against targets in [0,1].
func (b *BCEWithLogits) Forward(ctx *Context, logits, target *tensor.Tensor) float32 {
	shapeCheck(logits.Size() == target.Size(), "BCE: pred %v vs target %v", logits.Shape(), target.Shape())
	ctx.Dev.ChargeFLOPs(8*float64(logits.Size()), 1)
	b.sig = ctx.newTensorUninit(logits.Shape()...)
	b.target = target
	losses := pool.GetUninit(logits.Size())
	for i, v := range logits.Data {
		s := 1 / (1 + math.Exp(-float64(v)))
		b.sig.Data[i] = float32(s)
		t := float64(target.Data[i])
		losses[i] = -float32(t*math.Log(s+1e-12) + (1-t)*math.Log(1-s+1e-12))
	}
	loss := reduceSum(ctx, losses) / float32(logits.Size())
	pool.Put(losses)
	return loss
}

// Backward returns (sigmoid(logits) − target)/N.
func (b *BCEWithLogits) Backward(ctx *Context) *tensor.Tensor {
	shapeCheck(b.sig != nil, "BCE backward without matching forward")
	g := ctx.clone(b.sig)
	for i := range g.Data {
		g.Data[i] -= b.target.Data[i]
	}
	g.ScaleInPlace(1 / float32(g.Size()))
	b.sig, b.target = nil, nil
	return g
}
