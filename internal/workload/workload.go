// Package workload generates the synthetic workload traces behind the paper's
// cluster experiments: Philly-style job arrivals with a production-like
// runtime distribution (the 64-GPU trace experiment, §5.2), and the diurnal
// online-serving GPU load of the production cluster (Figures 1 and 16).
package workload

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/rng"
)

// JobSpec is one training job of a trace.
type JobSpec struct {
	ID    string
	Model string
	// MaxP is the requested degree of parallelism: the gang size under
	// YARN-CS and the number of ESTs under EasyScale.
	MaxP int
	// HomogeneousOnly marks jobs whose model relies on vendor kernels (no
	// D2): EasyScale restricts them to one GPU type.
	HomogeneousOnly bool
	// ArrivalSec is the submission time.
	ArrivalSec float64
	// WorkSteps is the total number of global mini-batch steps the job
	// must complete.
	WorkSteps float64
	// RequestedType is the GPU type the user's gang request pins (YARN-CS
	// allocates exactly this type; EasyScale ignores it).
	RequestedType device.Type
	// Team names the budget envelope that funds this job's leases under the
	// multi-tenant control plane ("" means the default single-tenant
	// envelope).
	Team string
	// Priority orders reservation retries under the control plane: higher
	// goes first; ties break by submission order.
	Priority int
	// MinGPUs is the admission floor: the control plane admits the job only
	// once it can lease this many GPUs of RequestedType (0 means fully
	// elastic — admit immediately with zero GPUs and grow by proposals, the
	// EasyScale default).
	MinGPUs int
}

// SizeDist is a gang-size distribution.
type SizeDist []struct {
	Size int
	Prob float64
}

// TraceSizes follows the 64-GPU trace experiment: most jobs are small, a
// heavy tail requests 8–16 GPUs (nothing beyond one type's capacity).
var TraceSizes = SizeDist{
	{1, 0.40}, {2, 0.20}, {4, 0.17}, {8, 0.13}, {16, 0.10},
}

// ProductionSizes follows the production-cluster statistic of §2.1, where
// gangs up to 64 GPUs exist and large jobs dominate revocation failures.
var ProductionSizes = SizeDist{
	{1, 0.35}, {2, 0.18}, {4, 0.15}, {8, 0.12}, {16, 0.10}, {32, 0.06}, {64, 0.04},
}

// Generate produces n jobs for the 64-GPU trace experiment: exponential
// inter-arrival times with the given mean, the TraceSizes gang distribution,
// models drawn uniformly from Table 1, and log-normal runtimes (median ~40
// minutes single-V100-equivalent) down-sampled from production training
// jobs, converted to global steps through the model's V100 step rate.
func Generate(n int, meanInterArrivalSec float64, seed uint64) []JobSpec {
	return generate(n, meanInterArrivalSec, seed, TraceSizes)
}

// GenerateProduction produces jobs with the production gang-size tail, for
// the §2.1 revocation statistics.
func GenerateProduction(n int, meanInterArrivalSec float64, seed uint64) []JobSpec {
	return generate(n, meanInterArrivalSec, seed, ProductionSizes)
}

func generate(n int, meanInterArrivalSec float64, seed uint64, sizes SizeDist) []JobSpec {
	s := rng.NewNamed(seed, "trace")
	names := models.TableNames()
	jobs := make([]JobSpec, n)
	now := 0.0
	v100GFLOPS := device.SpecOf(device.V100).PeakGFLOPS
	for i := range jobs {
		now += expVariate(s, meanInterArrivalSec)
		size := sampleSize(s, sizes)
		model := names[s.Intn(len(names))]
		w := models.MustBuild(model, 0)
		// log-normal gang runtime, median 2400 s, capped at 6 h; total work
		// scales with the requested parallelism (a 16-GPU job carries 16
		// GPUs' worth of work)
		runtime := math.Exp(math.Log(2400) + 1.0*s.NormFloat64())
		if runtime > 6*3600 {
			runtime = 6 * 3600
		}
		jobs[i] = JobSpec{
			ID:              fmt.Sprintf("job-%03d", i),
			Model:           model,
			MaxP:            size,
			HomogeneousOnly: w.UsesVendorKernels,
			ArrivalSec:      now,
			WorkSteps:       runtime * float64(size) * w.StepRate(v100GFLOPS),
			RequestedType:   requestType(s),
		}
	}
	return jobs
}

// GenerateTenants produces a multi-team trace for the control-plane
// experiments: the TraceSizes mix with jobs assigned round-trip-free to the
// given teams, a small priority spread, and a quarter of the jobs carrying a
// hard gang floor (MinGPUs = MaxP) so reservations and preemption-on-reclaim
// actually trigger.
func GenerateTenants(n int, teams []string, meanInterArrivalSec float64, seed uint64) []JobSpec {
	jobs := generate(n, meanInterArrivalSec, seed, TraceSizes)
	if len(teams) == 0 {
		return jobs
	}
	s := rng.NewNamed(seed, "tenants")
	for i := range jobs {
		jobs[i].Team = teams[s.Intn(len(teams))]
		jobs[i].Priority = s.Intn(3)
		if s.Float64() < 0.25 {
			jobs[i].MinGPUs = jobs[i].MaxP
		}
	}
	return jobs
}

func expVariate(s *rng.Stream, mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// requestType models users' gang-request GPU preferences: most ask for the
// fastest type.
func requestType(s *rng.Stream) device.Type {
	u := s.Float64()
	switch {
	case u < 0.70:
		return device.V100
	case u < 0.90:
		return device.P100
	default:
		return device.T4
	}
}

func sampleSize(s *rng.Stream, sizes SizeDist) int {
	u := s.Float64()
	acc := 0.0
	for _, g := range sizes {
		acc += g.Prob
		if u < acc {
			return g.Size
		}
	}
	return sizes[len(sizes)-1].Size
}

// ServingLoad models the online-serving cluster's GPU demand per minute over
// the given horizon: a diurnal sine (peak in the evening, trough at night)
// plus short-term noise and occasional traffic bursts, scaled so the
// idle-vs-peak gap is a large fraction of the fleet — the ~2,000-GPU swing
// Figure 1 reports on a 3,000+ GPU cluster.
func ServingLoad(minutes, totalGPUs int, seed uint64) []int {
	s := rng.NewNamed(seed, "serving")
	out := make([]int, minutes)
	base := 0.55 * float64(totalGPUs)
	amp := 0.28 * float64(totalGPUs)
	burst := 0.0
	for m := 0; m < minutes; m++ {
		hour := float64(m%1440) / 60.0
		// diurnal peak around 20:00, trough around 05:00
		diurnal := math.Sin((hour - 11) / 24 * 2 * math.Pi)
		noise := 0.02 * float64(totalGPUs) * s.NormFloat64()
		// bursts arrive rarely and decay over ~30 minutes
		if s.Float64() < 0.002 {
			burst = 0.1 * float64(totalGPUs)
		}
		burst *= 0.97
		v := base + amp*diurnal + noise + burst
		if v < 0 {
			v = 0
		}
		if v > float64(totalGPUs) {
			v = float64(totalGPUs)
		}
		out[m] = int(v)
	}
	return out
}

// LoadStats summarizes a serving-load series.
type LoadStats struct {
	Min, Max, Mean int
	Gap            int // Max - Min: the reclaimable idle capacity
}

// Stats computes summary statistics of a load series.
func Stats(load []int) LoadStats {
	if len(load) == 0 {
		return LoadStats{}
	}
	st := LoadStats{Min: load[0], Max: load[0]}
	sum := 0
	for _, v := range load {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / len(load)
	st.Gap = st.Max - st.Min
	return st
}
