package workload

import (
	"testing"

	"repro/internal/models"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, 60, 7)
	b := Generate(50, 60, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation must be deterministic per seed")
		}
	}
	c := Generate(50, 60, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateShape(t *testing.T) {
	jobs := Generate(200, 60, 1)
	if len(jobs) != 200 {
		t.Fatal("count")
	}
	prev := 0.0
	sizes := map[int]int{}
	names := map[string]bool{}
	for _, n := range models.Names() {
		names[n] = true
	}
	for _, j := range jobs {
		if j.ArrivalSec < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = j.ArrivalSec
		if !names[j.Model] {
			t.Fatalf("unknown model %s", j.Model)
		}
		if j.WorkSteps <= 0 {
			t.Fatal("work must be positive")
		}
		sizes[j.MaxP]++
		w := models.MustBuild(j.Model, 0)
		if j.HomogeneousOnly != w.UsesVendorKernels {
			t.Fatal("homogeneity flag must follow the vendor-kernel scan")
		}
	}
	if sizes[1] == 0 || sizes[16] == 0 {
		t.Fatalf("size distribution degenerate: %v", sizes)
	}
	if sizes[1] < sizes[16] {
		t.Fatalf("small jobs should dominate: %v", sizes)
	}
}

func TestServingLoadDiurnal(t *testing.T) {
	const total = 3000
	load := ServingLoad(2*1440, total, 42)
	st := Stats(load)
	if st.Min < 0 || st.Max > total {
		t.Fatalf("load out of range: %+v", st)
	}
	// the paper's Figure 1: the idle-vs-peak gap approaches 2,000 GPUs on a
	// ~3,000 GPU fleet
	if st.Gap < 1200 {
		t.Fatalf("diurnal gap too small: %+v", st)
	}
	if st.Mean < total/4 || st.Mean > 3*total/4 {
		t.Fatalf("mean load implausible: %+v", st)
	}
}

func TestServingLoadDeterministic(t *testing.T) {
	a := ServingLoad(100, 1000, 5)
	b := ServingLoad(100, 1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("serving load must be deterministic per seed")
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	if st := Stats(nil); st.Max != 0 || st.Gap != 0 {
		t.Fatal("empty stats should be zero")
	}
}
