// Package elastic implements the baseline elastic-training frameworks the
// paper compares against (§2.2): a TorchElastic-like framework that keeps the
// per-GPU batch and linearly scales the learning rate with the world size,
// and a Pollux-like framework that co-adapts total batch size and learning
// rate. Both faithfully change the *training semantics* with the resource
// count — which is exactly why their accuracy is inconsistent across GPU
// counts (Figures 2–4) — and a Gandiva-style worker-packing executor used as
// the GPU-sharing baseline of Figure 10.
package elastic

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Framework selects the baseline's hyper-parameter adaptation policy.
type Framework int

const (
	// FixedDDP is the non-elastic reference: whatever world size it is
	// given defines the semantics, no adaptation.
	FixedDDP Framework = iota
	// TorchElastic keeps the user's per-GPU batch size and applies the
	// linear LR scaling rule as the world changes.
	TorchElastic
	// Pollux co-adapts the total batch size (square-root growth in the
	// world size) and the learning rate (AdaScale-style square-root gain).
	Pollux
	// VirtualFlow keeps the reference semantics via gradient accumulation:
	// each physical worker sequentially executes RefWorld/world virtual
	// nodes and locally accumulates their gradients before the ring. Batch
	// sizes and data partition match the reference exactly — but the
	// floating-point reduction order does not, which is the residual
	// accuracy drift the paper cites (~0.4% on ResNet50).
	VirtualFlow
)

// String names the framework.
func (f Framework) String() string {
	switch f {
	case FixedDDP:
		return "DDP"
	case TorchElastic:
		return "TorchElastic"
	case Pollux:
		return "Pollux"
	case VirtualFlow:
		return "VirtualFlow"
	case EasyScale:
		return "EasyScale"
	}
	return fmt.Sprintf("Framework(%d)", int(f))
}

// BaselineConfig configures a baseline training run.
type BaselineConfig struct {
	Framework Framework
	Seed      uint64
	// RefWorld and BatchPerGPU define the user's intended semantics (the
	// configuration the DDP reference runs).
	RefWorld    int
	BatchPerGPU int
	BaseLR      float64
	Momentum    float64
	// StepLRSize/Gamma configure the epoch LR schedule (the gamma of Fig 4).
	StepLRSize  int
	StepLRGamma float64
}

// BaselineJob trains a workload with physical-world DDP semantics: the data
// partition, per-GPU batch, and learning rate are functions of the current
// world size, per the framework's policy.
type BaselineJob struct {
	Cfg      BaselineConfig
	Workload *models.Workload

	world   int
	sampler *data.ElasticSampler
	loader  *data.Loader
	ddp     *comm.ElasticDDP
	opt     *optim.SGD
	sched   *optim.StepLR
	rngs    []*rng.Bundle // per-worker framework RNGs
	grads   [][]*tensor.Tensor
	devs    []*device.Device

	epoch, step, globalStep int
	lastLoss                float32
}

// perGPUBatch returns the framework's per-GPU batch at the given world size.
func (c BaselineConfig) perGPUBatch(world int) int {
	switch c.Framework {
	case Pollux:
		// total batch grows like sqrt(world/refWorld) relative to the
		// reference total
		total := float64(c.BatchPerGPU*c.RefWorld) * math.Sqrt(float64(world)/float64(c.RefWorld))
		b := int(math.Round(total / float64(world)))
		if b < 1 {
			b = 1
		}
		return b
	default:
		return c.BatchPerGPU
	}
}

// lr returns the framework's learning rate at the given world size.
func (c BaselineConfig) lr(world int) float64 {
	switch c.Framework {
	case TorchElastic:
		// linear scaling rule (Goyal et al.)
		return c.BaseLR * float64(world) / float64(c.RefWorld)
	case Pollux:
		// AdaScale-style square-root gain with the total batch
		total := float64(c.perGPUBatch(world) * world)
		ref := float64(c.BatchPerGPU * c.RefWorld)
		return c.BaseLR * math.Sqrt(total/ref)
	default:
		return c.BaseLR
	}
}

// NewBaselineJob builds a baseline run at the given initial world size, on
// V100 GPUs with deterministic kernels (seeds are fixed, as in Figure 2: the
// inconsistency under study is semantic, not kernel noise).
func NewBaselineJob(cfg BaselineConfig, workload string, world int) (*BaselineJob, error) {
	if world <= 0 || cfg.RefWorld <= 0 || cfg.BatchPerGPU <= 0 {
		return nil, fmt.Errorf("elastic: invalid geometry world=%d ref=%d batch=%d", world, cfg.RefWorld, cfg.BatchPerGPU)
	}
	w, err := models.Build(workload, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := &BaselineJob{Cfg: cfg, Workload: w, world: world}
	b.configureWorld(world, 0, 0)
	params := w.Params()
	sizes := make([]int, len(params))
	for i, p := range params {
		sizes[i] = p.Value.Size()
	}
	b.ddp = comm.NewElasticDDP(sizes, 1<<12)
	b.opt = optim.NewSGD(params, cfg.lr(world), cfg.Momentum, 0)
	if cfg.StepLRSize > 0 {
		b.sched = optim.NewStepLR(b.opt, cfg.StepLRSize, cfg.StepLRGamma)
	}
	return b, nil
}

// configureWorld rebuilds the data pipeline and per-worker RNGs for a world
// size — the restart path of elastic frameworks. Mid-epoch progress is
// remapped by sample count (approximately), which itself perturbs the data
// order: part of the baseline's semantic drift.
func (b *BaselineJob) configureWorld(world, epoch, samplesDone int) {
	b.world = world
	batch := b.Cfg.perGPUBatch(world)
	samplerWorld := world
	if b.Cfg.Framework == VirtualFlow {
		// virtual nodes preserve the reference data partition exactly
		samplerWorld = b.Cfg.RefWorld
		if world > b.Cfg.RefWorld || b.Cfg.RefWorld%world != 0 {
			panic("elastic: VirtualFlow requires world to divide RefWorld")
		}
	}
	b.sampler = data.NewElasticSampler(b.Workload.Dataset.Len(), samplerWorld, batch, b.Cfg.Seed)
	b.loader = data.NewLoader(b.Workload.Dataset, b.sampler, 2, b.Cfg.Seed)
	b.loader.SetEpoch(epoch)
	b.epoch = epoch
	b.step = samplesDone / (world * batch)
	if b.step >= b.sampler.StepsPerEpoch() {
		b.step = b.sampler.StepsPerEpoch() - 1
	}
	// fast-forward the loader cursors to the resumed step
	for s := 0; s < b.step; s++ {
		for r := 0; r < samplerWorld; r++ {
			b.loader.Batch(s, r)
		}
	}
	b.rngs = make([]*rng.Bundle, samplerWorld)
	for r := range b.rngs {
		b.rngs[r] = rng.NewBundle(b.Cfg.Seed ^ (uint64(r)+1)*0x9e3779b97f4a7c15)
	}
	params := b.Workload.Params()
	b.grads = make([][]*tensor.Tensor, world)
	for r := range b.grads {
		b.grads[r] = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			b.grads[r][i] = tensor.New(p.Value.Shape()...)
		}
	}
	dc := device.Config{DeterministicKernels: true, Selection: device.SelectHeuristic}
	b.devs = make([]*device.Device, world)
	for i := range b.devs {
		b.devs[i] = device.New(device.V100, dc)
	}
}

// Rescale changes the world size, as TorchElastic/Pollux do when resources
// change: checkpoint-equivalent (params and optimizer survive), data pipeline
// rebuilt, hyper-parameters re-derived.
func (b *BaselineJob) Rescale(world int) {
	samplesDone := b.step * b.world * b.Cfg.perGPUBatch(b.world)
	b.configureWorld(world, b.epoch, samplesDone)
	b.opt.SetLR(b.Cfg.lr(world))
	if b.sched != nil {
		b.sched.BaseLR = b.Cfg.lr(world)
		b.sched.SetEpoch(b.epoch)
	}
}

// World returns the current world size.
func (b *BaselineJob) World() int { return b.world }

// Epoch returns the current epoch.
func (b *BaselineJob) Epoch() int { return b.epoch }

// LastLoss returns the mean loss of the last step.
func (b *BaselineJob) LastLoss() float32 { return b.lastLoss }

// RunStep executes one synchronous global step with the current semantics.
func (b *BaselineJob) RunStep() {
	if b.Cfg.Framework == VirtualFlow {
		b.runStepVirtualFlow()
		return
	}
	params := b.Workload.Params()
	var lossSum float32
	for r := 0; r < b.world; r++ {
		ctx := &nn.Context{Dev: b.devs[r], RNG: b.rngs[r].Torch, Training: true}
		x, labels := b.loader.Batch(b.step, r)
		b.opt.ZeroGrad()
		out := b.Workload.Net.Forward(ctx, x)
		lossSum += b.Workload.Loss.Forward(ctx, out, labels)
		b.Workload.Net.Backward(ctx, b.Workload.Loss.Backward(ctx))
		for i, p := range params {
			b.grads[r][i].CopyFrom(p.Grad)
		}
	}
	b.lastLoss = lossSum / float32(b.world)
	b.ddp.AllReduce(b.grads, b.world)
	for i, p := range params {
		p.Grad.CopyFrom(b.grads[0][i])
	}
	b.opt.Step()
	b.globalStep++
	b.step++
	if b.step >= b.sampler.StepsPerEpoch() {
		b.step = 0
		b.epoch++
		b.loader.SetEpoch(b.epoch)
		if b.sched != nil {
			b.sched.EpochStep()
		}
	}
}

// runStepVirtualFlow executes one global step with gradient accumulation:
// every physical worker runs its RefWorld/world virtual nodes sequentially,
// locally summing their gradients, then the ring spans the physical workers.
func (b *BaselineJob) runStepVirtualFlow() {
	params := b.Workload.Params()
	perWorker := b.Cfg.RefWorld / b.world
	var lossSum float32
	for w := 0; w < b.world; w++ {
		first := true
		for v := w * perWorker; v < (w+1)*perWorker; v++ {
			ctx := &nn.Context{Dev: b.devs[w], RNG: b.rngs[v].Torch, Training: true}
			x, labels := b.loader.Batch(b.step, v)
			b.opt.ZeroGrad()
			out := b.Workload.Net.Forward(ctx, x)
			lossSum += b.Workload.Loss.Forward(ctx, out, labels)
			b.Workload.Net.Backward(ctx, b.Workload.Loss.Backward(ctx))
			for i, p := range params {
				if first {
					b.grads[w][i].CopyFrom(p.Grad)
				} else {
					b.grads[w][i].AddInPlace(p.Grad)
				}
			}
			first = false
		}
	}
	b.lastLoss = lossSum / float32(b.Cfg.RefWorld)
	b.ddp.AllReduce(b.grads[:b.world], b.Cfg.RefWorld)
	for i, p := range params {
		p.Grad.CopyFrom(b.grads[0][i])
	}
	b.opt.Step()
	b.globalStep++
	b.step++
	if b.step >= b.sampler.StepsPerEpoch() {
		b.step = 0
		b.epoch++
		b.loader.SetEpoch(b.epoch)
		if b.sched != nil {
			b.sched.EpochStep()
		}
	}
}

// RunEpoch runs the remainder of the current epoch.
func (b *BaselineJob) RunEpoch() {
	e := b.epoch
	for b.epoch == e {
		b.RunStep()
	}
}

// Evaluate runs the held-out set and returns overall and per-class accuracy.
func (b *BaselineJob) Evaluate() (overall float64, perClass []float64) {
	return EvaluateNet(b.Workload, b.devs[0], b.rngs[0].Torch)
}

// EvaluateNet computes held-out overall and per-class accuracy for a
// workload's current parameters.
func EvaluateNet(w *models.Workload, dev *device.Device, r *rng.Stream) (float64, []float64) {
	ctx := &nn.Context{Dev: dev, RNG: r, Training: false}
	ds := w.EvalDataset
	correct := make([]int, w.Classes)
	total := make([]int, w.Classes)
	const batch = 64
	for base := 0; base+batch <= ds.Len(); base += batch {
		idx := make([]int, batch)
		for i := range idx {
			idx[i] = base + i
		}
		x, labels := data.MaterializeBatch(ds, idx, nil)
		out := w.Net.Forward(ctx, x)
		var preds []int
		if out.Rank() == 2 && out.Dim(1) == w.Classes {
			preds = out.ArgMaxRow()
		} else {
			flat := out.Reshape(-1)
			preds = make([]int, flat.Size())
			for i, v := range flat.Data {
				if v > 0 {
					preds[i] = 1
				}
			}
		}
		for i, lbl := range labels {
			total[lbl]++
			if preds[i] == lbl {
				correct[lbl]++
			}
		}
	}
	perClass := make([]float64, w.Classes)
	allC, allT := 0, 0
	for c := 0; c < w.Classes; c++ {
		if total[c] > 0 {
			perClass[c] = float64(correct[c]) / float64(total[c])
		}
		allC += correct[c]
		allT += total[c]
	}
	if allT == 0 {
		return 0, perClass
	}
	return float64(allC) / float64(allT), perClass
}
