package elastic

import (
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Worker packing (Gandiva) multiplexes k full DDP worker processes on one
// GPU. Every process carries its own CUDA context, parameter/optimizer
// replica, and activation working set, so GPU memory grows linearly in k and
// the approach OOMs quickly (Figure 10); concurrent kernel execution buys a
// modest throughput gain until then.

// PackingResult summarizes one packing (or EasyScale sharing) configuration.
type PackingResult struct {
	Workers    int
	PeakMB     float64
	OOM        bool
	Throughput float64 // samples/second (aggregate)
}

// singleWorkerStepTime measures the simulated execution time of one training
// step of one worker at the given batch size.
func singleWorkerStepTime(w *models.Workload, batch int, dev *device.Device) time.Duration {
	ctx := &nn.Context{Dev: dev, RNG: rng.New(1), Training: true}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i % w.Dataset.Len()
	}
	x, labels := data.MaterializeBatch(w.Dataset, idx, nil)
	before := dev.Now()
	dev.ChargeTime(2 * time.Millisecond) // kernel-launch overhead floor
	out := w.Net.Forward(ctx, x)
	w.Loss.Forward(ctx, out, labels)
	w.Net.Backward(ctx, w.Loss.Backward(ctx))
	return dev.Now() - before
}

// packingConcurrencyGain models the throughput benefit of concurrently
// executing k workers' kernels on one GPU: it saturates quickly — the paper
// measures at most 1.11× over EasyScale.
func packingConcurrencyGain(k int) float64 {
	gain := 1 + 0.04*float64(k-1)
	if gain > 1.12 {
		gain = 1.12
	}
	return gain
}

// SimulatePacking runs the Figure 10 worker-packing configuration: k DDP
// workers on one GPU of the given type/memory.
func SimulatePacking(workload string, k, batch, memMB int) PackingResult {
	w := models.MustBuild(workload, 1)
	dc := device.Config{DeterministicKernels: true, Selection: device.SelectHeuristic}
	dev := device.NewWithMemory(device.V100, memMB, dc)
	dev.SetFLOPsScale(w.SimTimeScale())

	m := w.Memory()
	res := PackingResult{Workers: k}
	for i := 0; i < k; i++ {
		need := float64(dev.Spec.ContextMB) + m.PerWorkerMB(batch)
		if err := dev.Alloc(need); err != nil {
			res.OOM = true
			res.PeakMB = dev.PeakMB()
			return res
		}
	}
	res.PeakMB = dev.PeakMB()

	step := singleWorkerStepTime(w, batch, dev)
	// k workers time-share the GPU with concurrency gain: aggregate
	// throughput = gain × one worker's throughput.
	perWorker := float64(batch) / step.Seconds()
	res.Throughput = perWorker * packingConcurrencyGain(k)
	return res
}

// SimulateEasyScaleSharing runs the EasyScale side of Figure 10: k ESTs
// time-sliced in one EasyScale worker — one CUDA context, one
// parameter/optimizer replica, one activation set, per-EST contexts only.
func SimulateEasyScaleSharing(workload string, k, batch, memMB int) PackingResult {
	w := models.MustBuild(workload, 1)
	dc := device.Config{DeterministicKernels: true, Selection: device.SelectHeuristic}
	dev := device.NewWithMemory(device.V100, memMB, dc)
	dev.SetFLOPsScale(w.SimTimeScale())

	m := w.Memory()
	res := PackingResult{Workers: k}
	// EST contexts: RNG states + BatchNorm stats — a rounding error in MB
	ctxMB := 0.01 * float64(k)
	need := float64(dev.Spec.ContextMB) + m.PerWorkerMB(batch) + ctxMB
	if err := dev.Alloc(need); err != nil {
		res.OOM = true
		res.PeakMB = dev.PeakMB()
		return res
	}
	res.PeakMB = dev.PeakMB()

	step := singleWorkerStepTime(w, batch, dev)
	// k ESTs run sequentially: aggregate throughput equals one worker's,
	// minus the context-switch overhead per mini-batch.
	switchOverhead := 150 * time.Microsecond
	perStep := step + switchOverhead
	res.Throughput = float64(batch) / perStep.Seconds()
	return res
}
