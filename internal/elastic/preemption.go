package elastic

// EasyScale is not a baseline adaptation policy (it never changes the
// training semantics) but appears in the Framework enum so tenancy-cost
// comparisons like PreemptionDowntime can cover it alongside the baselines.
const EasyScale Framework = VirtualFlow + 1

// PreemptionDowntime returns the expected training time (seconds) a running
// job loses when the cluster preempts it off its GPUs and it later resumes —
// the per-preemption cost a multi-tenant scheduler pays for reclaiming
// borrowed capacity.
//
// EasyScale pays only the reconfiguration pause: every EST's state is
// captured at mini-batch granularity by the Scale path, and the resumed plan
// is bitwise-identical to an uninterrupted run, so no work is lost. The
// checkpoint-restart baselines resume from their last periodic checkpoint,
// losing ckptIntervalSec/2 of progress in expectation on top of the same
// restart pause. That asymmetry is why the control plane can borrow idle
// quota aggressively for EasyScale jobs: a reclaim costs seconds, not epochs.
func PreemptionDowntime(f Framework, restartSec, ckptIntervalSec float64) float64 {
	if restartSec < 0 {
		restartSec = 0
	}
	if ckptIntervalSec < 0 {
		ckptIntervalSec = 0
	}
	if f == EasyScale {
		return restartSec
	}
	return restartSec + ckptIntervalSec/2
}
