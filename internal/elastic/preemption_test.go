package elastic

import "testing"

func TestPreemptionDowntime(t *testing.T) {
	const restart, interval = 5.0, 600.0
	if got := PreemptionDowntime(EasyScale, restart, interval); got != restart {
		t.Fatalf("EasyScale downtime %v, want restart pause only (%v)", got, restart)
	}
	for _, f := range []Framework{FixedDDP, TorchElastic, Pollux, VirtualFlow} {
		got := PreemptionDowntime(f, restart, interval)
		if want := restart + interval/2; got != want {
			t.Fatalf("%s downtime %v, want %v (restart + half checkpoint interval)", f, got, want)
		}
		if got <= PreemptionDowntime(EasyScale, restart, interval) {
			t.Fatalf("%s must pay more than EasyScale per preemption", f)
		}
	}
	if got := PreemptionDowntime(EasyScale, -1, -1); got != 0 {
		t.Fatalf("negative inputs must clamp to 0, got %v", got)
	}
}
