package elastic

import (
	"math"
	"testing"
)

func baseCfg(fw Framework) BaselineConfig {
	return BaselineConfig{
		Framework:   fw,
		Seed:        42,
		RefWorld:    4,
		BatchPerGPU: 8,
		BaseLR:      0.05,
		Momentum:    0.9,
	}
}

func TestFrameworkNames(t *testing.T) {
	if FixedDDP.String() != "DDP" || TorchElastic.String() != "TorchElastic" || Pollux.String() != "Pollux" {
		t.Fatal("framework names")
	}
	if Framework(9).String() == "" {
		t.Fatal("unknown framework should render")
	}
}

func TestHyperAdaptationRules(t *testing.T) {
	cfg := baseCfg(TorchElastic)
	if cfg.lr(4) != 0.05 {
		t.Fatalf("TE lr at refWorld = %v", cfg.lr(4))
	}
	if cfg.lr(8) != 0.1 {
		t.Fatalf("TE linear scaling: lr(8) = %v, want 0.1", cfg.lr(8))
	}
	if cfg.perGPUBatch(8) != 8 {
		t.Fatal("TE keeps per-GPU batch")
	}

	p := baseCfg(Pollux)
	if p.perGPUBatch(4) != 8 {
		t.Fatalf("Pollux batch at refWorld = %d", p.perGPUBatch(4))
	}
	// at world 1: total = 32·sqrt(1/4) = 16 → per-GPU 16
	if p.perGPUBatch(1) != 16 {
		t.Fatalf("Pollux batch at world 1 = %d, want 16", p.perGPUBatch(1))
	}
	if math.Abs(p.lr(1)-0.05*math.Sqrt(0.5)) > 1e-9 {
		t.Fatalf("Pollux lr at world 1 = %v", p.lr(1))
	}

	d := baseCfg(FixedDDP)
	if d.lr(8) != 0.05 || d.perGPUBatch(8) != 8 {
		t.Fatal("DDP must not adapt")
	}
}

func TestBaselineJobValidation(t *testing.T) {
	if _, err := NewBaselineJob(baseCfg(FixedDDP), "vgg19", 0); err == nil {
		t.Fatal("world 0 must error")
	}
	if _, err := NewBaselineJob(baseCfg(FixedDDP), "nope", 2); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestBaselineTrainsAndLossDecreases(t *testing.T) {
	j, err := NewBaselineJob(baseCfg(FixedDDP), "vgg19", 4)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float32
	for s := 0; s < 25; s++ {
		j.RunStep()
		if s == 0 {
			first = j.LastLoss()
		}
		last = j.LastLoss()
	}
	if last >= first {
		t.Fatalf("baseline loss did not decrease: %v → %v", first, last)
	}
	overall, perClass := j.Evaluate()
	if overall < 0 || overall > 1 || len(perClass) != 10 {
		t.Fatalf("eval: %v %v", overall, perClass)
	}
}

// TestInconsistentAccuracyAcrossWorlds is the Figure 2 phenomenon: the same
// job trained by an adaptive framework at different GPU counts ends with
// different parameters, while DDP semantics at the reference world define
// the target. Bitwise: TE at world 4 == DDP at world 4 (no adaptation at the
// reference), TE at world 2 != DDP at world 4.
func TestInconsistentAccuracyAcrossWorlds(t *testing.T) {
	run := func(fw Framework, world, steps int) *BaselineJob {
		j, err := NewBaselineJob(baseCfg(fw), "vgg19", world)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			j.RunStep()
		}
		return j
	}
	ref := run(FixedDDP, 4, 10)
	te4 := run(TorchElastic, 4, 10)
	if !paramsEqual(ref, te4) {
		t.Fatal("TorchElastic at the reference world must equal DDP (no adaptation applies)")
	}
	te2 := run(TorchElastic, 2, 20) // same number of samples
	if paramsEqual(ref, te2) {
		t.Fatal("TorchElastic at world 2 should diverge from DDP at world 4")
	}
	px2 := run(Pollux, 2, 20)
	if paramsEqual(ref, px2) || paramsEqual(te2, px2) {
		t.Fatal("Pollux should diverge from both DDP and TorchElastic")
	}
}

func paramsEqual(a, b *BaselineJob) bool {
	pa, pb := a.Workload.Params(), b.Workload.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			return false
		}
	}
	return true
}

func TestRescaleChangesSemantics(t *testing.T) {
	cfg := baseCfg(TorchElastic)
	j, err := NewBaselineJob(cfg, "vgg19", 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		j.RunStep()
	}
	j.Rescale(2)
	if j.World() != 2 {
		t.Fatal("world not updated")
	}
	if got := j.opt.LR(); math.Abs(got-0.025) > 1e-9 {
		t.Fatalf("TE lr after rescale to 2 = %v, want 0.025", got)
	}
	j.RunStep() // must not panic mid-epoch
}

func TestSimulatePackingOOMCrossover(t *testing.T) {
	// ResNet50 @ batch 32 on 16 GB V100: fine at 8 workers, OOM at 9+
	ok := SimulatePacking("resnet50", 8, 32, 16*1024)
	if ok.OOM {
		t.Fatal("8 packed resnet50 workers should fit on 16 GB")
	}
	oom := SimulatePacking("resnet50", 9, 32, 16*1024)
	if !oom.OOM {
		t.Fatal("9 packed resnet50 workers should OOM on 16 GB")
	}
	// ShuffleNetV2 @ batch 512 on 32 GB V100: 2 workers fit, 3 OOM
	if SimulatePacking("shufflenetv2", 2, 512, 32*1024).OOM {
		t.Fatal("2 packed shufflenet workers should fit on 32 GB")
	}
	if !SimulatePacking("shufflenetv2", 3, 512, 32*1024).OOM {
		t.Fatal("3 packed shufflenet workers should OOM on 32 GB")
	}
}

func TestEasyScaleSharingConstantMemory(t *testing.T) {
	r1 := SimulateEasyScaleSharing("resnet50", 1, 32, 16*1024)
	r16 := SimulateEasyScaleSharing("resnet50", 16, 32, 16*1024)
	if r1.OOM || r16.OOM {
		t.Fatal("EasyScale sharing must not OOM")
	}
	if r16.PeakMB > r1.PeakMB*1.01 {
		t.Fatalf("EasyScale memory should be ~constant: %v vs %v", r1.PeakMB, r16.PeakMB)
	}
	// ShuffleNet at 16 ESTs on 32 GB also fits (paper Figure 10b)
	if SimulateEasyScaleSharing("shufflenetv2", 16, 512, 32*1024).OOM {
		t.Fatal("16 shufflenet ESTs should fit via sharing")
	}
}

func TestPackingThroughputShape(t *testing.T) {
	es := SimulateEasyScaleSharing("resnet50", 4, 32, 16*1024)
	pk := SimulatePacking("resnet50", 4, 32, 16*1024)
	if pk.Throughput <= es.Throughput {
		t.Fatal("packing should have a small concurrency advantage while it fits")
	}
	if pk.Throughput > es.Throughput*1.2 {
		t.Fatalf("packing advantage too large: %v vs %v", pk.Throughput, es.Throughput)
	}
	// EasyScale throughput roughly constant in the number of ESTs
	es1 := SimulateEasyScaleSharing("resnet50", 1, 32, 16*1024)
	es16 := SimulateEasyScaleSharing("resnet50", 16, 32, 16*1024)
	ratio := es16.Throughput / es1.Throughput
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("EasyScale throughput should be ~constant across EST counts: ratio %v", ratio)
	}
}

// TestVirtualFlowCloserButNotBitwise: gradient accumulation preserves the
// data partition and hyper-parameters, so VirtualFlow tracks DDP far more
// closely than TE/Pollux — but the changed reduction order still breaks
// bitwise equality, the residual drift the paper cites.
func TestVirtualFlowCloserButNotBitwise(t *testing.T) {
	run := func(fw Framework, world, steps int) *BaselineJob {
		j, err := NewBaselineJob(baseCfg(fw), "vgg19", world)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			j.RunStep()
		}
		return j
	}
	const steps = 15
	ref := run(FixedDDP, 4, steps)
	vf2 := run(VirtualFlow, 2, steps) // same #global steps: same samples
	if paramsEqual(ref, vf2) {
		t.Fatal("VirtualFlow at a different world should not be bitwise equal (reduction order changed)")
	}
	te2 := run(TorchElastic, 2, 2*steps)
	dist := func(a, b *BaselineJob) float64 {
		pa, pb := a.Workload.Params(), b.Workload.Params()
		var m float64
		for i := range pa {
			if d := pa[i].Value.MaxAbsDiff(pb[i].Value); d > m {
				m = d
			}
		}
		return m
	}
	dVF := dist(ref, vf2)
	dTE := dist(ref, te2)
	if dVF >= dTE {
		t.Fatalf("VirtualFlow drift (%v) should be far below TorchElastic drift (%v)", dVF, dTE)
	}
	// VirtualFlow at the reference world degenerates to DDP exactly
	vf4 := run(VirtualFlow, 4, steps)
	if !paramsEqual(ref, vf4) {
		t.Fatal("VirtualFlow at the reference world must equal DDP bitwise")
	}
}

func TestVirtualFlowRequiresDivisibleWorld(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBaselineJob(baseCfg(VirtualFlow), "vgg19", 3)
}
