package serve

import (
	"time"

	"repro/internal/dist"
)

// item is one queued predict request plus its reply path and timing.
type item struct {
	req dist.PredictRequest
	// enq is the arrival instant; the batch the item joins must flush by
	// enq+MaxWait at the latest.
	enq time.Time
	// deadline is enq plus the request's own budget (zero budget means the
	// request imposes no flush pressure beyond MaxWait).
	deadline time.Time
	// enqClock is the tracer clock at arrival, for queue-residency spans.
	enqClock int64
	// reply receives exactly one PredictReply (buffered, never blocks the
	// replica).
	reply chan dist.PredictReply
}

// queue is the deployment's shared request queue: every replica of a model
// collects batches from the same queue, so adding a replica is just adding a
// consumer and removing one strands nothing — whatever the departed replica
// did not take stays queued for its peers.
//
// Determinism contract (detlint: serve is ordering-sensitive): items leave
// in arrival order, batches are contiguous prefixes, and a collect wakes for
// exactly three reasons — batch full, flush deadline reached, queue closed.
type queue struct {
	mu      chan struct{} // 1-token mutex; also guards cond below
	wake    chan struct{} // closed-and-replaced broadcast channel
	waiters int           // collectors currently parked on wake
	// items[head:] is the live queue; head advances as batches leave and
	// the backing array is compacted only when the dead prefix dominates,
	// so a collect is O(batch) instead of O(depth) and allocation-free.
	items  []*item
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{mu: make(chan struct{}, 1), wake: make(chan struct{})}
	q.mu <- struct{}{}
	return q
}

func (q *queue) lock()   { <-q.mu }
func (q *queue) unlock() { q.mu <- struct{}{} }

// broadcast wakes every waiter by closing the current wake channel and
// installing a fresh one. When no collector is parked — the saturated
// steady state, where replicas always find work without waiting — it does
// nothing, so the per-push cost is a counter check rather than a channel
// allocation. Callers must hold the lock.
func (q *queue) broadcast() {
	if q.waiters == 0 {
		return
	}
	close(q.wake)
	q.wake = make(chan struct{})
}

// push enqueues one item. Returns false when the queue is closed (the
// caller replies with an error instead of dropping silently).
func (q *queue) push(it *item) bool {
	q.lock()
	if q.closed {
		q.unlock()
		return false
	}
	q.items = append(q.items, it)
	q.broadcast()
	q.unlock()
	return true
}

// depth reports the current queue length (autoscaler input).
func (q *queue) depth() int {
	q.lock()
	n := len(q.items) - q.head
	q.unlock()
	return n
}

// isClosed reports whether close has been called.
func (q *queue) isClosed() bool {
	q.lock()
	c := q.closed
	q.unlock()
	return c
}

// collect blocks until at least one item is queued, then gathers a batch:
// it returns early with maxBatch items when the queue is that deep, and
// otherwise waits until the earliest flush instant — the first item's
// arrival plus maxWait, tightened by any queued request's own deadline —
// before taking whatever is there. Returns nil when the queue is closed and
// empty, or when stop fires first (queued items are left untouched for the
// surviving collectors, so aborting a collect can never drop a request).
func (q *queue) collect(maxBatch int, maxWait time.Duration, stop <-chan struct{}) []*item {
	q.lock()
	for {
		if len(q.items)-q.head >= maxBatch || (q.closed && len(q.items)-q.head > 0) {
			break
		}
		if q.closed {
			q.unlock()
			return nil
		}
		var timeout <-chan time.Time
		var timer *time.Timer
		if len(q.items)-q.head > 0 {
			flushAt := q.items[q.head].enq.Add(maxWait)
			for _, it := range q.items[q.head:] {
				if !it.deadline.IsZero() && it.deadline.Before(flushAt) {
					flushAt = it.deadline
				}
			}
			d := time.Until(flushAt)
			if d <= 0 {
				break
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		q.waiters++
		wake := q.wake
		q.unlock()
		select {
		case <-wake:
		case <-timeout:
		case <-stop:
			if timer != nil {
				timer.Stop()
			}
			q.lock()
			q.waiters--
			q.unlock()
			return nil
		}
		if timer != nil {
			timer.Stop()
		}
		q.lock()
		q.waiters--
	}
	n := len(q.items) - q.head
	if n > maxBatch {
		n = maxBatch
	}
	batch := q.items[q.head : q.head+n : q.head+n]
	q.head += n
	// returned batches alias this backing array, so compaction must move to
	// a fresh one — reusing the prefix would let new pushes overwrite items
	// a replica is still serving
	if q.head == len(q.items) {
		q.items = nil
		q.head = 0
	} else if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*item(nil), q.items[q.head:]...)
		q.head = 0
	}
	if len(q.items)-q.head >= maxBatch {
		// enough left for another full batch: wake a peer replica
		q.broadcast()
	}
	q.unlock()
	return batch
}

// drainAll removes and returns every queued item (shutdown path for a
// deployment with no replicas left to answer them).
func (q *queue) drainAll() []*item {
	q.lock()
	items := q.items[q.head:]
	q.items = nil
	q.head = 0
	q.unlock()
	return items
}

// close marks the queue closed and wakes every collector; already-queued
// items are still drained by collect so shutdown never drops work.
func (q *queue) close() {
	q.lock()
	if !q.closed {
		q.closed = true
		q.broadcast()
	}
	q.unlock()
}
