package serve

import (
	"reflect"
	"testing"
)

func planMap(plans []Plan) map[string]int {
	m := make(map[string]int, len(plans))
	for _, p := range plans {
		m[p.Name] = p.Replicas
	}
	return m
}

func TestPlanReplicasDemandSizing(t *testing.T) {
	plans := PlanReplicas([]ModelLoad{
		{Name: "a", Replicas: 1, Queued: 33}, // ceil(33/16) = 3
		{Name: "b", Replicas: 1, Queued: 5},  // ceil(5/16) = 1
	}, 16, 0, 0)
	got := planMap(plans)
	if got["a"] != 3 || got["b"] != 1 {
		t.Fatalf("plans %v", got)
	}
}

func TestPlanReplicasGreedyBySaturation(t *testing.T) {
	// capacity 3: the drowning deployment goes first, the other gets the rest
	plans := PlanReplicas([]ModelLoad{
		{Name: "calm", Replicas: 2, Queued: 8},       // sat 8/32 = 0.25, wants 1
		{Name: "drowning", Replicas: 1, Queued: 100}, // sat 100/16 = 6.25, wants 7
	}, 16, 3, 0)
	if plans[0].Name != "drowning" {
		t.Fatalf("most saturated must pick first, got %q", plans[0].Name)
	}
	got := planMap(plans)
	if got["drowning"] != 3 {
		t.Fatalf("drowning got %d of capacity 3 (partial allocation)", got["drowning"])
	}
	if got["calm"] != 0 {
		t.Fatalf("calm got %d from an exhausted budget", got["calm"])
	}
}

func TestPlanReplicasZeroReplicaDemandIsInfinite(t *testing.T) {
	plans := PlanReplicas([]ModelLoad{
		{Name: "busy", Replicas: 4, Queued: 400}, // sat 6.25
		{Name: "cold", Replicas: 0, Queued: 1},   // infinite: must go first
	}, 16, 2, 0)
	if plans[0].Name != "cold" {
		t.Fatalf("zero-replica demand must outrank finite saturation, got %q first", plans[0].Name)
	}
	if got := planMap(plans); got["cold"] != 1 || got["busy"] != 1 {
		t.Fatalf("plans %v, want cold=1 busy=1 under capacity 2", got)
	}
}

func TestPlanReplicasScaleToZero(t *testing.T) {
	idle := ModelLoad{Name: "idle", Replicas: 2, Queued: 0, Inflight: 0}
	// below the idle budget: replicas stay warm
	idle.IdleRounds = 2
	if got := planMap(PlanReplicas([]ModelLoad{idle}, 16, 0, 3)); got["idle"] != 2 {
		t.Fatalf("warm idle deployment scaled early: %v", got)
	}
	// at the budget: released entirely
	idle.IdleRounds = 3
	if got := planMap(PlanReplicas([]ModelLoad{idle}, 16, 0, 3)); got["idle"] != 0 {
		t.Fatalf("idle deployment not scaled to zero: %v", got)
	}
	// idleTicks 0 disables scale-to-zero
	idle.IdleRounds = 1000
	if got := planMap(PlanReplicas([]ModelLoad{idle}, 16, 0, 0)); got["idle"] != 2 {
		t.Fatalf("scale-to-zero ran with idleTicks=0: %v", got)
	}
}

func TestPlanReplicasScaleDownToDemand(t *testing.T) {
	plans := PlanReplicas([]ModelLoad{
		{Name: "waning", Replicas: 8, Queued: 10}, // ceil(10/16) = 1
	}, 16, 0, 0)
	if got := planMap(plans); got["waning"] != 1 {
		t.Fatalf("over-provisioned deployment kept %d replicas", got["waning"])
	}
}

func TestPlanReplicasDeterministic(t *testing.T) {
	loads := []ModelLoad{
		{Name: "b", Replicas: 1, Queued: 16},
		{Name: "a", Replicas: 1, Queued: 16}, // identical saturation: ties by name
		{Name: "c", Replicas: 0, Queued: 0},
	}
	first := PlanReplicas(loads, 16, 1, 0)
	if first[0].Name != "a" {
		t.Fatalf("equal saturation must tie-break by name, got %q first", first[0].Name)
	}
	for i := 0; i < 50; i++ {
		if again := PlanReplicas(loads, 16, 1, 0); !reflect.DeepEqual(first, again) {
			t.Fatalf("identical snapshot produced a different plan:\n%v\n%v", first, again)
		}
	}
}

func TestPlanReplicasInflightCountsAsDemand(t *testing.T) {
	plans := PlanReplicas([]ModelLoad{
		{Name: "m", Replicas: 1, Queued: 0, Inflight: 40},
	}, 16, 0, 0)
	if got := planMap(plans); got["m"] != 3 {
		t.Fatalf("in-flight demand ignored: %v", got)
	}
}
