package serve

import (
	"net"
	"testing"
	"time"
)

// TestClientTimesOutOnSilentServer: a server that accepts the connection but
// never replies must surface as a prompt timeout error from Predict, not a
// wedged client goroutine.
func TestClientTimesOutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the conn open, read nothing, reply never
		}
	}()

	cl, err := DialTimeout(ln.Addr().String(), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	if _, err := cl.Predict("m", []float32{1}, 0); err == nil {
		t.Fatal("Predict against a silent server must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Predict took %v; the deadline was not honored", elapsed)
	}
}
