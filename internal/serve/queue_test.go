package serve

import (
	"testing"
	"time"

	"repro/internal/dist"
)

func qItem(id uint64, budget time.Duration) *item {
	it := &item{
		req:   dist.PredictRequest{ID: id, Input: []float32{1}},
		enq:   time.Now(),
		reply: make(chan dist.PredictReply, 1),
	}
	if budget > 0 {
		it.deadline = it.enq.Add(budget)
	}
	return it
}

var never = make(chan struct{})

func TestQueueBatchFullFlush(t *testing.T) {
	q := newQueue()
	for i := 1; i <= 5; i++ {
		q.push(qItem(uint64(i), 0))
	}
	batch := q.collect(3, time.Hour, never)
	if len(batch) != 3 {
		t.Fatalf("batch size %d, want 3", len(batch))
	}
	// arrival order, contiguous prefix
	for i, it := range batch {
		if it.req.ID != uint64(i+1) {
			t.Fatalf("batch[%d] = request %d, want %d (arrival order)", i, it.req.ID, i+1)
		}
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("queue depth %d after collect, want 2", d)
	}
}

func TestQueueTimeoutFlush(t *testing.T) {
	q := newQueue()
	q.push(qItem(1, 0))
	start := time.Now()
	batch := q.collect(16, 5*time.Millisecond, never)
	if len(batch) != 1 {
		t.Fatalf("batch size %d, want 1", len(batch))
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Fatalf("maxWait flush took %v", e)
	}
}

func TestQueueDeadlineTightensFlush(t *testing.T) {
	q := newQueue()
	q.push(qItem(1, time.Millisecond)) // request's own budget ≪ maxWait
	start := time.Now()
	batch := q.collect(16, 10*time.Second, never)
	if len(batch) != 1 {
		t.Fatalf("batch size %d, want 1", len(batch))
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("deadline flush took %v (maxWait was 10s)", e)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue()
	q.push(qItem(1, 0))
	q.push(qItem(2, 0))
	q.close()
	if q.push(qItem(3, 0)) {
		t.Fatal("push after close must fail")
	}
	batch := q.collect(16, time.Hour, never)
	if len(batch) != 2 {
		t.Fatalf("closed queue drained %d items, want 2", len(batch))
	}
	if q.collect(16, time.Hour, never) != nil {
		t.Fatal("empty closed queue must return nil")
	}
}

func TestQueueStopAbandonsWithoutTaking(t *testing.T) {
	q := newQueue()
	stop := make(chan struct{})
	done := make(chan []*item, 1)
	go func() { done <- q.collect(16, time.Hour, stop) }()
	time.Sleep(2 * time.Millisecond)
	close(stop)
	if batch := <-done; batch != nil {
		t.Fatalf("stopped collect returned %d items", len(batch))
	}
	// an item pushed before or after the abort survives for other collectors
	q.push(qItem(7, 0))
	batch := q.collect(16, time.Millisecond, never)
	if len(batch) != 1 || batch[0].req.ID != 7 {
		t.Fatal("aborted collect lost a queued item")
	}
}

func TestQueueWakesSecondCollector(t *testing.T) {
	q := newQueue()
	got := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() { got <- len(q.collect(2, 50*time.Millisecond, never)) }()
	}
	for i := 1; i <= 4; i++ {
		q.push(qItem(uint64(i), 0))
	}
	total := <-got + <-got
	// Under scheduler pressure a collector can flush-timeout with a partial
	// batch before all pushes land; whatever it left behind must still be
	// collectable — the invariant is no item is ever lost, not batch shape.
	for total < 4 {
		rest := q.collect(2, time.Millisecond, never)
		if len(rest) == 0 {
			t.Fatalf("collectors took %d items, remainder unreachable (want all 4)", total)
		}
		total += len(rest)
	}
	if total != 4 {
		t.Fatalf("collectors took %d items, want exactly 4", total)
	}
}
