package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/models"
)

// LoadGen is a closed-loop load generator: Workers goroutines per model,
// each with its own client connection, each issuing PerWorker requests
// back-to-back (a new request the moment the previous reply lands). Inputs
// are drawn from the model's own synthetic dataset, so embedding ids stay
// in vocabulary, and the request stream is a pure function of
// (model, worker, i) — two runs against differently-configured servers see
// bitwise-identical requests, which is what makes the output checksum a
// batching-equivalence oracle.
type LoadGen struct {
	// Addr is the serve server's TCP address.
	Addr string
	// Direct, when set, bypasses TCP and drives Server.Dispatch in-process
	// (Addr is ignored). This measures the serving core — queueing,
	// batching, forward — without loopback syscalls, which on small hosts
	// otherwise dominate and mask the batching gain.
	Direct *Server
	// Models lists the deployments to drive (each gets its own worker
	// pool).
	Models []string
	// Workers is the closed-loop worker count per model.
	Workers int
	// PerWorker is the request count per worker.
	PerWorker int
	// BudgetMicros is each request's deadline budget (0: server default).
	BudgetMicros int64
	// InputPool is how many distinct dataset rows each model's request
	// stream cycles through (default 256).
	InputPool int
}

// LoadReport summarizes one load-generation run.
type LoadReport struct {
	// Requests is the number issued; Errors the number answered with an
	// error (a correct run has zero — the zero-drop invariant).
	Requests, Errors int
	// Latency summarizes per-request latency in milliseconds.
	Latency metrics.Summary
	// LatencyBucketsMs buckets the same latencies (bounds in
	// LatencyBoundsMs).
	LatencyBucketsMs []int
	// Checksum is an FNV-1a fold of every output's float bits in
	// deterministic (model, worker, i) order: equal request streams must
	// produce equal checksums regardless of batching, replica count, or
	// scaling events.
	Checksum uint64
	// Seconds is the wall time of the whole run; Throughput the aggregate
	// requests per second.
	Seconds    float64
	Throughput float64
}

// LatencyBoundsMs are the histogram bucket bounds of LoadReport.
var LatencyBoundsMs = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128}

// inputPool materializes n distinct rows of the model's dataset
// (deterministically: no augmentation stream).
func inputPool(name string, n int) ([][]float32, error) {
	w, err := models.Build(name, 1)
	if err != nil {
		return nil, err
	}
	dim := 1
	for _, d := range w.Dataset.InputShape() {
		dim *= d
	}
	pool := make([][]float32, n)
	for i := range pool {
		row := make([]float32, dim)
		w.Dataset.Sample(i%w.Dataset.Len(), row, nil)
		pool[i] = row
	}
	return pool, nil
}

// Run drives the load and reports. Results are collected in pre-indexed
// per-worker slots — no result channels — so aggregation order is a pure
// function of the spec (detlint: serve is ordering-sensitive).
func (g LoadGen) Run() (LoadReport, error) {
	if g.Workers <= 0 || g.PerWorker <= 0 || len(g.Models) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs models, workers, and requests")
	}
	poolN := g.InputPool
	if poolN <= 0 {
		poolN = 256
	}
	pools := make([][][]float32, len(g.Models))
	for m, name := range g.Models {
		p, err := inputPool(name, poolN)
		if err != nil {
			return LoadReport{}, err
		}
		pools[m] = p
	}

	type slot struct {
		latencyMs float64
		checksum  uint64
		failed    bool
	}
	slots := make([][]slot, len(g.Models)*g.Workers)
	for i := range slots {
		slots[i] = make([]slot, g.PerWorker)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(g.Models)*g.Workers)
	start := time.Now()
	for m := range g.Models {
		for w := 0; w < g.Workers; w++ {
			wg.Add(1)
			go func(m, w int) {
				defer wg.Done()
				wi := m*g.Workers + w
				predict := func(model string, in []float32) ([]float32, error) {
					rep := g.Direct.Dispatch(dist.PredictRequest{ID: 1, Model: model, Input: in, BudgetMicros: g.BudgetMicros})
					if rep.Err != "" {
						return nil, errors.New(rep.Err)
					}
					return rep.Output, nil
				}
				if g.Direct == nil {
					cl, err := Dial(g.Addr)
					if err != nil {
						errs[wi] = err
						for i := range slots[wi] {
							slots[wi][i].failed = true
						}
						return
					}
					defer cl.Close()
					predict = func(model string, in []float32) ([]float32, error) {
						return cl.Predict(model, in, g.BudgetMicros)
					}
				}
				pool := pools[m]
				for i := 0; i < g.PerWorker; i++ {
					input := pool[(w*g.PerWorker+i)%len(pool)]
					t0 := time.Now()
					out, err := predict(g.Models[m], input)
					lat := time.Since(t0)
					st := &slots[wi][i]
					st.latencyMs = float64(lat) / float64(time.Millisecond)
					if err != nil {
						st.failed = true
						continue
					}
					h := fnv.New64a()
					var b [4]byte
					for _, v := range out {
						bits := math.Float32bits(v)
						b[0], b[1], b[2], b[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
						h.Write(b[:])
					}
					st.checksum = h.Sum64()
				}
			}(m, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadReport{Requests: len(g.Models) * g.Workers * g.PerWorker}
	lats := make([]float64, 0, rep.Requests)
	fold := fnv.New64a()
	var fb [8]byte
	for wi := range slots {
		for i := range slots[wi] {
			st := slots[wi][i]
			if st.failed {
				rep.Errors++
				continue
			}
			lats = append(lats, st.latencyMs)
			c := st.checksum
			for k := 0; k < 8; k++ {
				fb[k] = byte(c >> (8 * k))
			}
			fold.Write(fb[:])
		}
	}
	rep.Latency = metrics.Summarize(lats)
	rep.LatencyBucketsMs = metrics.Histogram(lats, LatencyBoundsMs)
	rep.Checksum = fold.Sum64()
	rep.Seconds = elapsed.Seconds()
	if rep.Seconds > 0 {
		rep.Throughput = float64(rep.Requests-rep.Errors) / rep.Seconds
	}
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}
