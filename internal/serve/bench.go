package serve

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// BenchConfig parameterizes the batched-vs-unbatched serving benchmark.
type BenchConfig struct {
	// Models are the zoo workloads to deploy (default: neumf and mlp, the
	// two smallest — fixed per-forward overhead dominates them, which is
	// exactly where dynamic batching pays).
	Models []string
	// TrainSteps is how long each model trains before its checkpoint is
	// taken (enough to make parameters non-trivial; accuracy is not the
	// point here).
	TrainSteps int
	// Workers/PerWorker shape the closed loop per model; total requests
	// per mode is len(Models)*Workers*PerWorker.
	Workers, PerWorker int
	// MaxBatch is the batched mode's coalescing bound (unbatched mode is
	// always 1).
	MaxBatch int
	// Seed seeds the training jobs.
	Seed uint64
}

func (c BenchConfig) withDefaults() BenchConfig {
	if len(c.Models) == 0 {
		c.Models = []string{"neumf", "mlp"}
	}
	if c.TrainSteps <= 0 {
		c.TrainSteps = 2
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.PerWorker <= 0 {
		c.PerWorker = 800
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// ModeResult is one serving mode's outcome.
type ModeResult struct {
	MaxBatch      int
	Requests      int
	Errors        int
	ThroughputRPS float64
	MeanMs        float64
	P50Ms         float64
	P99Ms         float64
	P999Ms        float64
	BucketsMs     []int
	Checksum      uint64
}

// BenchOutcome is the benchmark record (BENCH_pr8.json). Batched/Unbatched
// drive the full TCP protocol; SaturationBatched/SaturationUnbatched drive
// the serving core in-process, where the replicas — not loopback syscalls —
// are the bottleneck, which is the regime the batching speedup claim is
// about. All four checksums must agree: neither the transport nor batching
// may change an output bit.
type BenchOutcome struct {
	Models              []string
	Workers             int
	PerWorker           int
	ISA                 string
	Batched             ModeResult
	Unbatched           ModeResult
	SaturationBatched   ModeResult
	SaturationUnbatched ModeResult
	// SpeedupX is the saturation (serving-core) throughput ratio;
	// TCPSpeedupX the end-to-end protocol ratio, which a small host's
	// per-request syscall cost dilutes.
	SpeedupX       float64
	TCPSpeedupX    float64
	ChecksumsEqual bool
}

// TrainContainers trains each model briefly on the in-process engine and
// returns its sharded checkpoint container — the artifact a real cluster
// would hand from the training side to the serving side.
func TrainContainers(names []string, steps int, seed uint64) (map[string][]byte, error) {
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		cfg := core.DefaultConfig(1)
		cfg.Seed = seed
		j, err := core.NewJob(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("serve: training %q: %w", name, err)
		}
		if err := j.Attach(core.EvenPlacement(1, device.V100)); err != nil {
			return nil, fmt.Errorf("serve: training %q: %w", name, err)
		}
		if err := j.RunSteps(steps); err != nil {
			return nil, fmt.Errorf("serve: training %q: %w", name, err)
		}
		out[name] = j.Checkpoint()
	}
	return out, nil
}

// runMode serves the containers with the given batching bound and drives
// the standard load against it, over TCP or (direct=true) in-process.
func runMode(containers map[string][]byte, names []string, maxBatch, workers, perWorker int, direct bool, tr *obs.Tracer) (ModeResult, error) {
	srv := NewServer(Options{MaxBatch: maxBatch, MaxWait: 2 * time.Millisecond}, tr)
	for _, name := range names {
		if err := srv.Deploy(name, containers[name], 1); err != nil {
			return ModeResult{}, err
		}
	}
	defer srv.Close()
	gen := LoadGen{Models: names, Workers: workers, PerWorker: perWorker}
	if direct {
		gen.Direct = srv
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ModeResult{}, err
		}
		go srv.Serve(ln)
		gen.Addr = ln.Addr().String()
	}
	rep, err := gen.Run()
	if err != nil {
		return ModeResult{}, err
	}
	return ModeResult{
		MaxBatch:      maxBatch,
		Requests:      rep.Requests,
		Errors:        rep.Errors,
		ThroughputRPS: rep.Throughput,
		MeanMs:        rep.Latency.Mean,
		P50Ms:         rep.Latency.P50,
		P99Ms:         rep.Latency.P99,
		P999Ms:        rep.Latency.P999,
		BucketsMs:     rep.LatencyBucketsMs,
		Checksum:      rep.Checksum,
	}, nil
}

// RunBench trains the model set, serves it batched and unbatched, drives
// the identical closed-loop load at both, and reports throughput, latency
// percentiles, and the output checksums. Equal checksums are the
// whole-system restatement of the bitwise batching-equivalence guarantee:
// a hundred thousand requests got bit-identical answers whether or not
// they shared a forward pass.
func RunBench(cfg BenchConfig, tr *obs.Tracer) (BenchOutcome, error) {
	cfg = cfg.withDefaults()
	containers, err := TrainContainers(cfg.Models, cfg.TrainSteps, cfg.Seed)
	if err != nil {
		return BenchOutcome{}, err
	}
	out := BenchOutcome{Models: cfg.Models, Workers: cfg.Workers, PerWorker: cfg.PerWorker, ISA: kernels.ActiveISA()}
	out.Batched, err = runMode(containers, cfg.Models, cfg.MaxBatch, cfg.Workers, cfg.PerWorker, false, tr)
	if err != nil {
		return out, err
	}
	out.Unbatched, err = runMode(containers, cfg.Models, 1, cfg.Workers, cfg.PerWorker, false, tr)
	if err != nil {
		return out, err
	}
	out.SaturationBatched, err = runMode(containers, cfg.Models, cfg.MaxBatch, cfg.Workers, cfg.PerWorker, true, tr)
	if err != nil {
		return out, err
	}
	out.SaturationUnbatched, err = runMode(containers, cfg.Models, 1, cfg.Workers, cfg.PerWorker, true, tr)
	if err != nil {
		return out, err
	}
	if out.SaturationUnbatched.ThroughputRPS > 0 {
		out.SpeedupX = out.SaturationBatched.ThroughputRPS / out.SaturationUnbatched.ThroughputRPS
	}
	if out.Unbatched.ThroughputRPS > 0 {
		out.TCPSpeedupX = out.Batched.ThroughputRPS / out.Unbatched.ThroughputRPS
	}
	out.ChecksumsEqual = out.Batched.Checksum == out.Unbatched.Checksum &&
		out.Batched.Checksum == out.SaturationBatched.Checksum &&
		out.Batched.Checksum == out.SaturationUnbatched.Checksum
	return out, nil
}
