// Package serve is the elastic inference-serving runtime: the other half of
// the paper's production story, where GPUs freed by elastic training (and
// reclaimed from it) run online model serving with a diurnal load curve
// (Figures 1 and 16).
//
// The core mechanism is deadline-aware dynamic batching. Each model replica
// owns a queue of predict requests; a batcher coalesces whatever is queued
// into one forward pass, flushing when the batch reaches MaxBatch or when
// the earliest deadline in the queue would otherwise be missed. Batching
// multiplies throughput on the tiled GEMM path — the batch dimension simply
// becomes M — at bounded latency cost.
//
// Why coalescing is safe: the serving counterpart of EasyScale's EST
// numerics contract. Every output row of a forward pass depends only on the
// corresponding input row and the parameters; the per-element accumulation
// order inside the GEMM kernels is a function of K (the reduction dim) and
// never of M (the batch dim). A request's output is therefore bitwise
// identical whether it runs alone or coalesced with any batchmates, on any
// ISA — proven by differential test and fuzzer (TestBatchedBitwiseEqual,
// FuzzBatchEquivalence) across every available micro-kernel. That guarantee
// is what lets the autoscaler resize and re-route freely: no placement or
// batching decision can ever change a prediction.
//
// Replica scaling has no drain downtime: adding a replica just adds a
// consumer of the deployment's queue; removing one re-queues whatever the
// departing replica held, so in-flight requests complete rather than drop.
// The autoscaler (PlanReplicas) follows the greedy saturation policy of
// GPU-limiter-style schedulers: deployments sorted by saturation get
// replicas first, partial allocation under a capacity constraint, and
// scale-to-zero for models that stay idle.
package serve

import "time"

// Options configures a Server.
type Options struct {
	// MaxBatch bounds the number of requests coalesced into one forward
	// pass (and is the per-replica capacity unit the autoscaler plans in).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch may sit queued
	// before the batch flushes regardless of size. A request with an
	// explicit deadline budget shorter than MaxWait tightens the flush
	// further.
	MaxWait time.Duration
	// Capacity is the total replica budget across all deployments; 0 means
	// unlimited (the autoscaler never has to arbitrate).
	Capacity int
	// IdleTicks is how many consecutive idle autoscale rounds a deployment
	// survives before scaling to zero; 0 disables scale-to-zero.
	IdleTicks int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	return o
}
