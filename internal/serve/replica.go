package serve

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// replica is one serving instance of a model: its own Servable (parameters,
// implicit state, and layer scratch are private — nn layers cache
// activations during Forward, so replicas must not share a net), its own
// deterministic device, and a loop that drains the deployment's shared
// queue in batches.
type replica struct {
	idx  int
	dep  *deployment
	sv   *models.Servable
	dev  *device.Device
	ctx  *nn.Context
	tr   *obs.Tracer
	trk  int
	stop chan struct{}
	done chan struct{}
}

func newReplica(dep *deployment, idx int, tr *obs.Tracer) (*replica, error) {
	sv, err := models.Load(dep.name, dep.container)
	if err != nil {
		return nil, fmt.Errorf("serve: replica %d of %q: %w", idx, dep.name, err)
	}
	dev := device.New(device.V100, device.Config{DeterministicKernels: true, Selection: device.SelectHeuristic})
	r := &replica{
		idx:  idx,
		dep:  dep,
		sv:   sv,
		dev:  dev,
		ctx:  &nn.Context{Dev: dev, Training: false},
		tr:   tr,
		trk:  tr.Track(fmt.Sprintf("serve/%s/%d", dep.name, idx)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// loop drains the deployment queue until stopped. A stop takes effect
// between batches: the current batch always completes and replies, so
// removing a replica never drops an in-flight request, and anything still
// queued stays in the shared queue for the surviving replicas.
func (r *replica) loop() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		batch := r.dep.q.collect(r.dep.maxBatch, r.dep.maxWait, r.stop)
		if batch == nil {
			// stopped mid-wait (items stay queued for peers) or queue
			// closed; either way the loop-head select decides
			if r.dep.q.isClosed() {
				return
			}
			continue
		}
		r.dep.inflight.Add(int64(len(batch)))
		r.serveBatch(batch)
		r.dep.inflight.Add(-int64(len(batch)))
		r.dep.served.Add(int64(len(batch)))
	}
}

// serveBatch coalesces the batch into one forward pass and splits the
// output rows back into per-request replies. Row b of the output is bitwise
// the prediction request b would get alone — see the package doc — so
// coalescing here is invisible to clients.
func (r *replica) serveBatch(batch []*item) {
	start := r.tr.Now()
	for _, it := range batch {
		// queue residency: from arrival to the moment a replica took it
		r.tr.Span(r.trk, obs.CatServe, "serve.queue", it.enqClock, int64(it.req.ID), 0)
	}
	inDim := r.sv.InDim()
	ok := batch[:0:0]
	for _, it := range batch {
		if len(it.req.Input) != inDim {
			it.reply <- dist.PredictReply{ID: it.req.ID,
				Err: fmt.Sprintf("model %q wants %d input values, got %d", r.dep.name, inDim, len(it.req.Input))}
			continue
		}
		ok = append(ok, it)
	}
	if len(ok) == 0 {
		// the whole batch was malformed; close the span so the trace still
		// accounts for the pass
		r.tr.Span(r.trk, obs.CatServe, "serve.batch.rejected", start, 0, int64(len(batch)))
		return
	}
	out, err := r.forward(ok)
	if err != nil && len(ok) > 1 {
		// one bad request can poison a coalesced pass (embedding ids probe
		// vocabulary bounds inside the kernel); retry each alone so its
		// batchmates still get answers
		for _, it := range ok {
			single, serr := r.forward([]*item{it})
			if serr != nil {
				it.reply <- dist.PredictReply{ID: it.req.ID, Err: serr.Error()}
				continue
			}
			it.reply <- dist.PredictReply{ID: it.req.ID, Output: single.row(0)}
		}
		r.tr.Span(r.trk, obs.CatServe, "serve.batch.degraded", start, int64(len(ok)), 1)
		return
	}
	if err != nil {
		ok[0].reply <- dist.PredictReply{ID: ok[0].req.ID, Err: err.Error()}
		r.tr.Span(r.trk, obs.CatServe, "serve.batch.error", start, int64(len(ok)), 0)
		return
	}
	for b, it := range ok {
		it.reply <- dist.PredictReply{ID: it.req.ID, Output: out.row(b)}
	}
	r.tr.Span(r.trk, obs.CatServe, "serve.batch", start, int64(len(ok)), int64(len(batch)-len(ok)))
}

// rows wraps a forward output for per-request row extraction.
type rows struct {
	data   []float32
	rowLen int
}

func (o rows) row(b int) []float32 {
	return append([]float32(nil), o.data[b*o.rowLen:(b+1)*o.rowLen]...)
}

// forward runs one coalesced pass over the batch. Panics from the nn layer
// stack (out-of-vocabulary ids, shape violations) surface as errors.
func (r *replica) forward(batch []*item) (out rows, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: model %q rejected input: %v", r.dep.name, p)
		}
	}()
	x := tensor.New(append([]int{len(batch)}, r.sv.InShape...)...)
	inDim := r.sv.InDim()
	for b, it := range batch {
		copy(x.Data[b*inDim:(b+1)*inDim], it.req.Input)
	}
	y := r.sv.Net.Forward(r.ctx, x)
	if y.Dim(0) != len(batch) {
		return rows{}, fmt.Errorf("serve: model %q returned %d rows for %d requests", r.dep.name, y.Dim(0), len(batch))
	}
	return rows{data: y.Data, rowLen: y.Size() / len(batch)}, nil
}

// halt stops the replica and waits for its loop to finish the in-flight
// batch.
func (r *replica) halt() {
	close(r.stop)
	<-r.done
}
