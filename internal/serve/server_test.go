package serve

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

func startServer(t *testing.T, opts Options, tr *obs.Tracer, deploy map[string]int) (*Server, string) {
	t.Helper()
	containers := testContainers(t)
	srv := NewServer(opts, tr)
	for _, name := range []string{"mlp", "neumf"} {
		n, ok := deploy[name]
		if !ok {
			continue
		}
		if err := srv.Deploy(name, containers[name], n); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// TestServeEndToEnd drives a two-model deployment over TCP, batched and
// unbatched, and requires bitwise-equal output checksums and zero errors —
// the protocol-level restatement of the batching-equivalence guarantee.
func TestServeEndToEnd(t *testing.T) {
	run := func(maxBatch int) LoadReport {
		_, addr := startServer(t, Options{MaxBatch: maxBatch, MaxWait: time.Millisecond}, nil,
			map[string]int{"mlp": 1, "neumf": 1})
		rep, err := LoadGen{Addr: addr, Models: []string{"neumf", "mlp"}, Workers: 8, PerWorker: 40}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	batched := run(16)
	unbatched := run(1)
	if batched.Errors != 0 || unbatched.Errors != 0 {
		t.Fatalf("errors: batched %d, unbatched %d", batched.Errors, unbatched.Errors)
	}
	if batched.Requests != 2*8*40 {
		t.Fatalf("requests %d", batched.Requests)
	}
	if batched.Checksum != unbatched.Checksum {
		t.Fatalf("checksum mismatch: batched %016x, unbatched %016x — batching changed an output bit",
			batched.Checksum, unbatched.Checksum)
	}
}

func TestServeUnknownModelAndBadFrame(t *testing.T) {
	srv, addr := startServer(t, Options{}, nil, map[string]int{"mlp": 1})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Predict("bogus", []float32{1}, 0); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("want unknown-model error, got %v", err)
	}
	if srv.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
	// a frame that fails to decode gets an error reply, then the server
	// hangs up (the stream may be desynchronized)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := dist.WriteFrame(c, dist.MsgPredict, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	payload, err := dist.Expect(c, dist.MsgPredictReply)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dist.DecodePredictReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == "" {
		t.Fatal("bad frame must be answered with an error reply")
	}
}

// TestLiveScalingNoDrops scales a deployment up and down continuously while
// a closed-loop load runs; every request must be answered (no drops, no
// errors) and the checksum must match an unperturbed run — scaling events
// are invisible to clients.
func TestLiveScalingNoDrops(t *testing.T) {
	spec := func(addr string) LoadGen {
		return LoadGen{Addr: addr, Models: []string{"mlp", "neumf"}, Workers: 8, PerWorker: 60}
	}
	// baseline: fixed single replica
	_, addr := startServer(t, Options{MaxBatch: 8, MaxWait: time.Millisecond}, nil,
		map[string]int{"mlp": 1, "neumf": 1})
	base, err := spec(addr).Run()
	if err != nil {
		t.Fatal(err)
	}

	srv, addr2 := startServer(t, Options{MaxBatch: 8, MaxWait: time.Millisecond}, nil,
		map[string]int{"mlp": 1, "neumf": 1})
	stopScaling := make(chan struct{})
	var scaler sync.WaitGroup
	scaler.Add(1)
	go func() {
		defer scaler.Done()
		n := 1
		for {
			select {
			case <-stopScaling:
				return
			case <-time.After(3 * time.Millisecond):
			}
			n = n%4 + 1 // 1→2→3→4→1…
			if err := srv.SetReplicas("mlp", n); err != nil {
				t.Error(err)
				return
			}
			if err := srv.SetReplicas("neumf", 5-n); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	perturbed, err := spec(addr2).Run()
	close(stopScaling)
	scaler.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Errors != 0 {
		t.Fatalf("%d requests failed during live scaling", perturbed.Errors)
	}
	if srv.Rejected() != 0 {
		t.Fatalf("%d requests rejected during live scaling", srv.Rejected())
	}
	if perturbed.Checksum != base.Checksum {
		t.Fatalf("scaling changed outputs: %016x vs %016x", perturbed.Checksum, base.Checksum)
	}
}

// TestAutoscalerSoak runs the saturation autoscaler against live load:
// deployments must scale up under pressure, answer everything, scale to
// zero when idle, and wake again for a late request.
func TestAutoscalerSoak(t *testing.T) {
	tr := obs.New()
	srv, addr := startServer(t,
		Options{MaxBatch: 8, MaxWait: time.Millisecond, Capacity: 6, IdleTicks: 3}, tr,
		map[string]int{"mlp": 1, "neumf": 1})
	stop := srv.StartAutoscaler(2 * time.Millisecond)
	defer stop()

	rep, err := LoadGen{Addr: addr, Models: []string{"mlp", "neumf"}, Workers: 12, PerWorker: 50}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || srv.Rejected() != 0 {
		t.Fatalf("autoscaler dropped work: %d errors, %d rejected", rep.Errors, srv.Rejected())
	}
	if got := srv.Served("mlp") + srv.Served("neumf"); got != int64(rep.Requests) {
		t.Fatalf("served %d of %d requests", got, rep.Requests)
	}

	// idle: both deployments must reach zero replicas (generous window — the
	// race detector on a loaded single-core box stalls the ticker)
	deadline := time.Now().Add(20 * time.Second)
	for srv.Replicas("mlp")+srv.Replicas("neumf") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no scale-to-zero: mlp=%d neumf=%d", srv.Replicas("mlp"), srv.Replicas("neumf"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// scale-from-zero: a late request re-triggers allocation and is answered
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pool, err := inputPool("mlp", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Predict("mlp", pool[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty prediction after scale-from-zero")
	}
	if srv.Replicas("mlp") == 0 {
		t.Fatal("request answered but replica count still zero")
	}
}

// TestServeSpansRecorded: serving must land spans on its own per-replica
// tracks with the serve category, and the trace must export cleanly.
func TestServeSpansRecorded(t *testing.T) {
	tr := obs.New()
	srv, addr := startServer(t, Options{MaxBatch: 4, MaxWait: time.Millisecond}, tr,
		map[string]int{"mlp": 1})
	if _, err := (LoadGen{Addr: addr, Models: []string{"mlp"}, Workers: 2, PerWorker: 10}).Run(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	found := false
	for _, name := range tr.TrackNames() {
		if strings.HasPrefix(name, "serve/mlp/") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no serve replica track registered: %v", tr.TrackNames())
	}
	var sawBatch, sawQueue bool
	for _, spans := range tr.Spans() {
		for _, s := range spans {
			if s.Cat != obs.CatServe {
				continue
			}
			switch s.Name {
			case "serve.batch":
				sawBatch = true
			case "serve.queue":
				sawQueue = true
			}
		}
	}
	if !sawBatch || !sawQueue {
		t.Fatalf("missing serve spans: batch=%v queue=%v", sawBatch, sawQueue)
	}
}

// TestBenchSmokeInProcess is a scaled-down RunBench: it exercises the whole
// train→checkpoint→deploy→load→report pipeline and enforces the checksum
// equality (the throughput ratio is asserted only by the real benchmark
// run, not under `go test` where the box is busy).
func TestBenchSmokeInProcess(t *testing.T) {
	out, err := RunBench(BenchConfig{Workers: 4, PerWorker: 30, MaxBatch: 8, TrainSteps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ChecksumsEqual {
		t.Fatalf("batched %016x != unbatched %016x", out.Batched.Checksum, out.Unbatched.Checksum)
	}
	if out.Batched.Errors != 0 || out.Unbatched.Errors != 0 {
		t.Fatalf("bench errors: %d/%d", out.Batched.Errors, out.Unbatched.Errors)
	}
	if out.Batched.Requests != 2*4*30 {
		t.Fatalf("bench drove %d requests", out.Batched.Requests)
	}
	if out.Batched.P999Ms < out.Batched.P50Ms {
		t.Fatalf("latency summary inconsistent: p999 %v < p50 %v", out.Batched.P999Ms, out.Batched.P50Ms)
	}
}
