package serve

import "sort"

// ModelLoad is the autoscaler's per-deployment input snapshot.
type ModelLoad struct {
	// Name identifies the deployment (plans come back keyed by it).
	Name string
	// Replicas is the current replica count.
	Replicas int
	// Queued is the depth of the deployment's request queue.
	Queued int
	// Inflight counts requests taken by replicas but not yet answered.
	Inflight int
	// IdleRounds counts consecutive autoscale rounds with zero demand.
	IdleRounds int
}

// Plan is one deployment's target replica count.
type Plan struct {
	Name     string
	Replicas int
	// Saturation is the demand-to-capacity ratio the decision was based
	// on, for observability (negative means infinite: demand with zero
	// replicas).
	Saturation float64
}

// PlanReplicas computes target replica counts with the greedy
// saturation-ordered policy of GPU-limiter-style schedulers:
//
//  1. Each deployment's demand is its queued plus in-flight requests; its
//     desired replica count is ceil(demand / maxBatch) — just enough
//     capacity to clear the backlog in one coalesced pass per replica.
//  2. Deployments are sorted by saturation (demand over current capacity,
//     infinite when demand meets zero replicas) — the most underwater
//     deployment picks first.
//  3. Replicas are granted greedily under the total capacity budget;
//     when the budget runs short a deployment takes a partial allocation
//     (whatever is left) rather than nothing.
//  4. A deployment idle for more than idleTicks rounds scales to zero;
//     its queue survives, so a late request simply re-triggers scale-up.
//
// The function is pure and deterministic: equal saturation breaks ties by
// name, so identical snapshots always produce identical plans (detlint:
// serve is ordering-sensitive).
func PlanReplicas(loads []ModelLoad, maxBatch, capacity, idleTicks int) []Plan {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	type cand struct {
		Plan
		desired int
	}
	cands := make([]cand, 0, len(loads))
	for _, l := range loads {
		demand := l.Queued + l.Inflight
		desired := (demand + maxBatch - 1) / maxBatch
		sat := 0.0
		switch {
		case demand == 0:
			// idle: keep current replicas warm until the idle budget runs
			// out, then release them all
			desired = l.Replicas
			if idleTicks > 0 && l.IdleRounds >= idleTicks {
				desired = 0
			}
		case l.Replicas == 0:
			sat = -1 // infinite: demand against zero capacity
		default:
			sat = float64(demand) / float64(l.Replicas*maxBatch)
		}
		if demand > 0 && desired < 1 {
			desired = 1
		}
		cands = append(cands, cand{Plan{Name: l.Name, Saturation: sat}, desired})
	}
	// most saturated first; -1 (infinite) outranks everything; ties break
	// by name so the plan is a pure function of the snapshot
	sort.Slice(cands, func(i, j int) bool {
		si, sj := cands[i].Saturation, cands[j].Saturation
		ii, ij := si < 0, sj < 0
		if ii != ij {
			return ii
		}
		if si != sj {
			return si > sj
		}
		return cands[i].Name < cands[j].Name
	})
	budget := capacity
	unlimited := capacity <= 0
	plans := make([]Plan, len(cands))
	for i, c := range cands {
		grant := c.desired
		if !unlimited {
			if grant > budget {
				grant = budget // partial allocation beats starvation
			}
			budget -= grant
		}
		plans[i] = c.Plan
		plans[i].Replicas = grant
	}
	return plans
}
