package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/dist"
)

// Client is a synchronous serving client: one TCP connection, one
// outstanding request at a time. Load generators open one Client per
// closed-loop worker.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	nextID  uint64
	timeout time.Duration
}

// Dial connects to a serve server with the default I/O timeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, dist.DefaultTimeout)
}

// DialTimeout connects with an explicit bound on the dial and on each
// subsequent request/reply exchange. A server that accepts but never
// replies surfaces as a timeout error instead of a wedged worker.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	// armed immediately so the conn is never unbounded; Predict re-arms per
	// request
	if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
		c.Close()
		return nil, fmt.Errorf("serve: arming deadline: %w", err)
	}
	return &Client{c: c, br: bufio.NewReaderSize(c, 16<<10), timeout: timeout}, nil
}

// Predict sends one request and blocks for its reply. budgetMicros ≤ 0
// means no deadline pressure beyond the server's MaxWait.
func (cl *Client) Predict(model string, input []float32, budgetMicros int64) ([]float32, error) {
	cl.nextID++
	req := dist.PredictRequest{ID: cl.nextID, Model: model, Input: input}
	if budgetMicros > 0 {
		req.BudgetMicros = budgetMicros
	}
	if err := cl.c.SetDeadline(time.Now().Add(cl.timeout)); err != nil {
		return nil, fmt.Errorf("serve: arming deadline: %w", err)
	}
	if err := dist.WriteFrame(cl.c, dist.MsgPredict, dist.EncodePredict(req)); err != nil {
		return nil, err
	}
	t, payload, err := dist.ReadFrameFrom(cl.br)
	if err != nil {
		return nil, err
	}
	if t != dist.MsgPredictReply {
		return nil, fmt.Errorf("serve: expected reply frame, got %d", t)
	}
	rep, err := dist.DecodePredictReply(payload)
	if err != nil {
		return nil, err
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.ID != req.ID {
		return nil, fmt.Errorf("serve: reply for request %d, expected %d", rep.ID, req.ID)
	}
	return rep.Output, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }
