package serve

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/models"
	"repro/internal/nn"
)

// testContainers trains each model once per test binary (checkpoints are
// deterministic, so sharing them across tests changes nothing).
var (
	containersOnce sync.Once
	containersMap  map[string][]byte
	containersErr  error
)

func testContainers(t testing.TB) map[string][]byte {
	containersOnce.Do(func() {
		containersMap, containersErr = TrainContainers([]string{"neumf", "mlp"}, 2, 5)
	})
	if containersErr != nil {
		t.Fatal(containersErr)
	}
	return containersMap
}

// bareReplica builds a replica without starting its loop, for direct
// forward-path testing.
func bareReplica(t testing.TB, name string, container []byte) *replica {
	sv, err := models.Load(name, container)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(device.V100, device.Config{DeterministicKernels: true, Selection: device.SelectHeuristic})
	return &replica{
		dep: &deployment{name: name},
		sv:  sv,
		dev: dev,
		ctx: &nn.Context{Dev: dev, Training: false},
	}
}

func mkItems(inputs [][]float32) []*item {
	items := make([]*item, len(inputs))
	for i, in := range inputs {
		items[i] = &item{
			req:   dist.PredictRequest{ID: uint64(i + 1), Input: in},
			reply: make(chan dist.PredictReply, 1),
		}
	}
	return items
}

// forEachISA runs fn under every available micro-kernel ISA, restoring the
// previous selection afterwards.
func forEachISA(t *testing.T, fn func(t *testing.T)) {
	prev := kernels.ActiveISA()
	defer func() {
		if err := kernels.SetISA(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, isa := range kernels.AvailableISAs() {
		isa := isa
		t.Run(isa, func(t *testing.T) {
			if err := kernels.SetISA(isa); err != nil {
				t.Fatal(err)
			}
			fn(t)
		})
	}
}

// TestBatchedBitwiseEqual is the core differential guarantee: for every
// model and every ISA, a request's output row from a coalesced forward pass
// is bitwise identical to the row it gets from a single-request pass. This
// is what makes dynamic batching invisible to clients — the serving
// counterpart of the training side's EST numerics contract.
func TestBatchedBitwiseEqual(t *testing.T) {
	containers := testContainers(t)
	forEachISA(t, func(t *testing.T) {
		for name, container := range map[string][]byte{"neumf": containers["neumf"], "mlp": containers["mlp"]} {
			r := bareReplica(t, name, container)
			pool, err := inputPool(name, 13)
			if err != nil {
				t.Fatal(err)
			}
			// every batch size from 2 up to a healthy coalescing width
			for _, bs := range []int{2, 3, 7, 13} {
				batched, err := r.forward(mkItems(pool[:bs]))
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < bs; b++ {
					single, err := r.forward(mkItems(pool[b : b+1]))
					if err != nil {
						t.Fatal(err)
					}
					want, got := single.row(0), batched.row(b)
					if len(want) != len(got) {
						t.Fatalf("%s row %d: lengths %d vs %d", name, b, len(got), len(want))
					}
					for k := range want {
						if math.Float32bits(want[k]) != math.Float32bits(got[k]) {
							t.Fatalf("%s batch=%d row=%d elem=%d: batched %08x, single %08x",
								name, bs, b, k, math.Float32bits(got[k]), math.Float32bits(want[k]))
						}
					}
				}
			}
		}
	})
}

// FuzzBatchEquivalence fuzzes the same property over arbitrary inputs and
// batch compositions on the mlp model (pure float inputs: every byte string
// is a valid request). Whatever the fuzzer packs into the batch — including
// NaN and infinity payloads — each row's bits must not depend on its
// batchmates.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F}, uint8(2)) // NaN bits
	f.Add([]byte{}, uint8(4))
	containers := testContainers(f)
	r := bareReplica(f, "mlp", containers["mlp"])
	dim := r.sv.InDim()
	f.Fuzz(func(t *testing.T, raw []byte, nreq uint8) {
		bs := int(nreq)%7 + 2 // 2..8
		inputs := make([][]float32, bs)
		for b := range inputs {
			row := make([]float32, dim)
			for k := range row {
				off := 4 * ((b*dim + k) % (len(raw)/4 + 1))
				if off+4 <= len(raw) {
					row[k] = math.Float32frombits(binary.LittleEndian.Uint32(raw[off:]))
				} else {
					row[k] = float32(b*dim+k) * 0.01
				}
			}
			inputs[b] = row
		}
		batched, err := r.forward(mkItems(inputs))
		if err != nil {
			t.Fatalf("batched forward failed: %v", err)
		}
		for b := 0; b < bs; b++ {
			single, err := r.forward(mkItems(inputs[b : b+1]))
			if err != nil {
				t.Fatalf("single forward failed: %v", err)
			}
			want, got := single.row(0), batched.row(b)
			for k := range want {
				if math.Float32bits(want[k]) != math.Float32bits(got[k]) {
					t.Fatalf("row %d elem %d: batched %08x, single %08x",
						b, k, math.Float32bits(got[k]), math.Float32bits(want[k]))
				}
			}
		}
	})
}

// TestServeBatchDegradedPath: one poison request (out-of-vocabulary
// embedding id) must not take down its batchmates — they are retried alone
// and answered, the poison request gets an error reply.
func TestServeBatchDegradedPath(t *testing.T) {
	containers := testContainers(t)
	r := bareReplica(t, "neumf", containers["neumf"])
	pool, err := inputPool("neumf", 4)
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems([][]float32{pool[0], {9e9, 9e9}, pool[1]})
	r.serveBatch(items)
	for i, it := range items {
		rep := <-it.reply
		if i == 1 {
			if rep.Err == "" {
				t.Fatal("poison request should get an error reply")
			}
			continue
		}
		if rep.Err != "" {
			t.Fatalf("batchmate %d got error: %s", i, rep.Err)
		}
		single, err := r.forward(mkItems([][]float32{it.req.Input}))
		if err != nil {
			t.Fatal(err)
		}
		want := single.row(0)
		for k := range want {
			if math.Float32bits(want[k]) != math.Float32bits(rep.Output[k]) {
				t.Fatalf("batchmate %d output changed by poison neighbor", i)
			}
		}
	}
}

// TestServeBatchInputLengthCheck: a wrong-dimension request is rejected
// before the coalesced pass, with the right reply ID.
func TestServeBatchInputLengthCheck(t *testing.T) {
	containers := testContainers(t)
	r := bareReplica(t, "mlp", containers["mlp"])
	pool, err := inputPool("mlp", 1)
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems([][]float32{pool[0], {1, 2, 3}})
	r.serveBatch(items)
	if rep := <-items[0].reply; rep.Err != "" {
		t.Fatalf("valid request rejected: %s", rep.Err)
	}
	if rep := <-items[1].reply; rep.Err == "" || rep.ID != 2 {
		t.Fatalf("short request should get an ID-matched error reply, got %+v", rep)
	}
}
