package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/obs"
)

// deployment is one served model: a checkpoint container, the shared
// request queue, and the live replica set.
type deployment struct {
	name      string
	container []byte
	q         *queue
	maxBatch  int
	maxWait   time.Duration

	mu       sync.Mutex
	replicas []*replica
	nextIdx  int // monotonically increasing replica index (track names stay unique)

	inflight   atomic.Int64
	served     atomic.Int64
	idleRounds int // guarded by Server.mu (autoscale runs single-threaded)
}

// Server serves predict requests for a set of deployed models over the
// framed dist protocol, with per-deployment dynamic batching and
// saturation-based replica autoscaling.
type Server struct {
	opts Options
	tr   *obs.Tracer

	mu       sync.Mutex
	deps     map[string]*deployment
	depNames []string // sorted; the deterministic iteration order over deps
	closed   bool

	ln net.Listener
	wg sync.WaitGroup

	// rejected counts requests answered with an error reply (never
	// silently dropped — the zero-drop invariant is replies == requests).
	rejected atomic.Int64
}

// NewServer creates a server. tr may be nil (tracing off).
func NewServer(opts Options, tr *obs.Tracer) *Server {
	return &Server{opts: opts.withDefaults(), tr: tr, deps: map[string]*deployment{}}
}

// Deploy registers a model from its checkpoint container and starts the
// given number of replicas. The container is validated eagerly: a broken
// checkpoint fails here, not on the first request.
func (s *Server) Deploy(name string, container []byte, replicas int) error {
	if _, err := models.Load(name, container); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("serve: server closed")
	}
	if _, ok := s.deps[name]; ok {
		return fmt.Errorf("serve: model %q already deployed", name)
	}
	d := &deployment{
		name:      name,
		container: container,
		q:         newQueue(),
		maxBatch:  s.opts.MaxBatch,
		maxWait:   s.opts.MaxWait,
	}
	s.deps[name] = d
	s.depNames = append(s.depNames, name)
	sort.Strings(s.depNames)
	return s.setReplicasLocked(d, replicas)
}

// SetReplicas live-scales a deployment. Scaling down halts the excess
// replicas after their in-flight batch; scaling up adds consumers of the
// same queue. Neither direction drops or delays queued requests.
func (s *Server) SetReplicas(name string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.deps[name]
	if !ok {
		return fmt.Errorf("serve: model %q not deployed: %w", name, models.ErrNotFound)
	}
	return s.setReplicasLocked(d, n)
}

func (s *Server) setReplicasLocked(d *deployment, n int) error {
	if n < 0 {
		n = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.replicas) > n {
		last := d.replicas[len(d.replicas)-1]
		d.replicas = d.replicas[:len(d.replicas)-1]
		d.mu.Unlock()
		last.halt() // completes its in-flight batch; queued items survive
		d.mu.Lock()
	}
	for len(d.replicas) < n {
		r, err := newReplica(d, d.nextIdx, s.tr)
		if err != nil {
			return err
		}
		d.nextIdx++
		d.replicas = append(d.replicas, r)
	}
	if s.tr != nil {
		s.tr.Event(s.tr.Track("serve/scaler"), obs.CatServe, "serve.scale",
			d.name, int64(n), int64(d.q.depth()))
	}
	return nil
}

// Replicas reports a deployment's current replica count.
func (s *Server) Replicas(name string) int {
	s.mu.Lock()
	d, ok := s.deps[name]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.replicas)
}

// Served reports the total requests answered (successfully batched) for a
// deployment.
func (s *Server) Served(name string) int64 {
	s.mu.Lock()
	d, ok := s.deps[name]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return d.served.Load()
}

// Rejected reports requests answered with an error reply.
func (s *Server) Rejected() int64 { return s.rejected.Load() }

// Dispatch is the in-process entry point: it enqueues the request and
// blocks until its reply. Unknown models and closed deployments get error
// replies, never silence.
func (s *Server) Dispatch(req dist.PredictRequest) dist.PredictReply {
	reply := make(chan dist.PredictReply, 1)
	s.enqueue(req, reply)
	return <-reply
}

// enqueue routes a request to its deployment's queue with the given reply
// channel (which may be shared by many requests — the connection handler
// funnels a whole connection's replies through one channel). Exactly one
// reply is always sent.
func (s *Server) enqueue(req dist.PredictRequest, reply chan dist.PredictReply) {
	s.mu.Lock()
	d, ok := s.deps[req.Model]
	s.mu.Unlock()
	if !ok {
		s.rejected.Add(1)
		reply <- dist.PredictReply{ID: req.ID, Err: fmt.Sprintf("unknown model %q", req.Model)}
		return
	}
	it := &item{
		req:      req,
		enq:      time.Now(),
		enqClock: s.tr.Now(),
		reply:    reply,
	}
	if req.BudgetMicros > 0 {
		it.deadline = it.enq.Add(time.Duration(req.BudgetMicros) * time.Microsecond)
	}
	if !d.q.push(it) {
		s.rejected.Add(1)
		reply <- dist.PredictReply{ID: req.ID, Err: fmt.Sprintf("model %q is shutting down", req.Model)}
	}
}

// Loads snapshots every deployment for the autoscaler, in sorted name
// order.
func (s *Server) Loads() []ModelLoad {
	s.mu.Lock()
	defer s.mu.Unlock()
	loads := make([]ModelLoad, 0, len(s.depNames))
	for _, name := range s.depNames {
		d := s.deps[name]
		d.mu.Lock()
		n := len(d.replicas)
		d.mu.Unlock()
		loads = append(loads, ModelLoad{
			Name:       name,
			Replicas:   n,
			Queued:     d.q.depth(),
			Inflight:   int(d.inflight.Load()),
			IdleRounds: d.idleRounds,
		})
	}
	return loads
}

// AutoscaleOnce runs one plan/apply round and returns the applied plan.
func (s *Server) AutoscaleOnce() []Plan {
	loads := s.Loads()
	// update the idle accounting the next snapshot will see
	s.mu.Lock()
	for i, l := range loads {
		d := s.deps[l.Name]
		if d == nil {
			continue
		}
		if l.Queued+l.Inflight == 0 {
			d.idleRounds++
		} else {
			d.idleRounds = 0
		}
		loads[i].IdleRounds = d.idleRounds
	}
	s.mu.Unlock()
	plans := PlanReplicas(loads, s.opts.MaxBatch, s.opts.Capacity, s.opts.IdleTicks)
	for _, p := range plans {
		// ignore per-deployment errors here: a failed scale-up leaves the
		// previous replica set serving
		_ = s.SetReplicas(p.Name, p.Replicas)
	}
	return plans
}

// StartAutoscaler runs AutoscaleOnce every interval until the returned stop
// function is called.
func (s *Server) StartAutoscaler(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.AutoscaleOnce()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Serve accepts connections on ln until Close. Each connection may pipeline
// predict requests; replies carry the request's ID, so clients match them
// regardless of batching.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		//detlint:ignore deadlineio -- lifetime accept loop: Close() closes the listener, which unblocks Accept with an error
		c, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// handleConn reads predict frames and writes replies. The reader enqueues
// straight into deployment queues — no per-request goroutine — and all of
// the connection's replies funnel through one channel to a single writer
// goroutine, so batched completions from several replicas never interleave
// partial frames. The reader counts requests in, the writer counts replies
// out (draining without writing once the conn errors), and the reader
// closes the channel only when the two balance — the zero-drop invariant at
// connection scope.
func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	replies := make(chan dist.PredictReply, 256)
	writerDone := make(chan struct{})
	var pending sync.WaitGroup
	go func() {
		defer close(writerDone)
		failed := false
		for rep := range replies {
			if !failed {
				// a stalled client must not wedge the writer (and through it
				// pending.Wait and Close); bound each reply write
				if err := c.SetWriteDeadline(time.Now().Add(dist.DefaultTimeout)); err != nil {
					failed = true
				} else if err := dist.WriteFrame(c, dist.MsgPredictReply, dist.EncodePredictReply(rep)); err != nil {
					failed = true // keep draining so replicas never block on a dead conn
				}
			}
			pending.Done()
		}
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		t, payload, err := dist.ReadFrameFrom(br)
		if err != nil {
			break
		}
		if t != dist.MsgPredict {
			break
		}
		req, err := dist.DecodePredict(payload)
		if err != nil {
			// can't know the ID of a frame that failed to decode; the
			// stream may be desynchronized, so answer and hang up
			s.rejected.Add(1)
			pending.Add(1)
			replies <- dist.PredictReply{Err: fmt.Sprintf("bad predict frame: %v", err)}
			break
		}
		pending.Add(1)
		s.enqueue(req, replies)
	}
	pending.Wait()
	close(replies)
	<-writerDone
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, drains every deployment queue (replicas answer
// whatever is still queued), then halts all replicas.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	names := append([]string(nil), s.depNames...)
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	for _, name := range names {
		s.mu.Lock()
		d := s.deps[name]
		s.mu.Unlock()
		d.q.close() // collectors drain the remainder, then see closed+empty
		d.mu.Lock()
		replicas := append([]*replica(nil), d.replicas...)
		d.replicas = nil
		d.mu.Unlock()
		if len(replicas) == 0 {
			// scaled to zero: nobody will answer the stragglers; reply
			// with an error rather than leaving Dispatch callers blocked
			for _, it := range d.q.drainAll() {
				s.rejected.Add(1)
				it.reply <- dist.PredictReply{ID: it.req.ID,
					Err: fmt.Sprintf("model %q is shutting down", d.name)}
			}
		}
		// let the replicas answer everything still queued before joining
		// them — halting first could abort a collect mid-drain
		for d.q.depth() > 0 || d.inflight.Load() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
		for _, r := range replicas {
			r.halt()
		}
	}
}
