// Package checkpoint implements the binary serialization layer behind
// EasyScale's on-demand checkpointing.
//
// Everything an elastic restart needs — model parameters, optimizer moments,
// BatchNorm running statistics, EST contexts (RNG states, virtual ranks,
// progress), the gradient-bucket plan, and the data-loader worker states — is
// written through this encoder. Floats are serialized by bit pattern, so a
// checkpoint round-trip is bitwise lossless, which the paper's
// accuracy-consistency guarantee requires.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// ErrCorrupt is returned when a read runs past the buffer or a tag
// mismatches.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated data")

// Writer encodes a checkpoint into a byte buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded checkpoint.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded size.
func (w *Writer) Len() int { return len(w.buf) }

// PutUint64 appends a fixed-width unsigned integer.
func (w *Writer) PutUint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// PutInt appends a signed integer.
func (w *Writer) PutInt(v int) { w.PutUint64(uint64(int64(v))) }

// PutBool appends a boolean.
func (w *Writer) PutBool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// PutFloat64 appends a float64 by bit pattern.
func (w *Writer) PutFloat64(v float64) { w.PutUint64(math.Float64bits(v)) }

// PutString appends a length-prefixed string.
func (w *Writer) PutString(s string) {
	w.PutInt(len(s))
	w.buf = append(w.buf, s...)
}

// PutFloat32s appends a length-prefixed float32 slice by bit pattern. The
// buffer is reserved once up front, so encoding a large tensor costs one
// reallocation instead of O(log n) whole-buffer copies from per-element
// append growth.
func (w *Writer) PutFloat32s(vs []float32) {
	w.PutInt(len(vs))
	w.buf = slices.Grow(w.buf, 4*len(vs))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(v))
	}
}

// PutInts appends a length-prefixed int slice.
func (w *Writer) PutInts(vs []int) {
	w.PutInt(len(vs))
	w.buf = slices.Grow(w.buf, 8*len(vs))
	for _, v := range vs {
		w.PutInt(v)
	}
}

// PutTensor appends shape and data of a tensor.
func (w *Writer) PutTensor(t *tensor.Tensor) {
	w.PutInts(t.Shape())
	w.PutFloat32s(t.Data)
}

// PutRNGState appends a serialized RNG state.
func (w *Writer) PutRNGState(st rng.State) {
	for _, word := range st.S {
		w.PutUint64(word)
	}
}

// Reader decodes a checkpoint produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps encoded bytes.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, ErrCorrupt
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Uint64 reads a fixed-width unsigned integer.
func (r *Reader) Uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Int reads a signed integer.
func (r *Reader) Int() (int, error) {
	v, err := r.Uint64()
	return int(int64(v)), err
}

// Bool reads a boolean.
func (r *Reader) Bool() (bool, error) {
	b, err := r.take(1)
	if err != nil {
		return false, err
	}
	return b[0] != 0, nil
}

// Float64 reads a float64 by bit pattern.
func (r *Reader) Float64() (float64, error) {
	v, err := r.Uint64()
	return math.Float64frombits(v), err
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Int()
	if err != nil || n < 0 {
		return "", ErrCorrupt
	}
	b, err := r.take(n)
	return string(b), err
}

// Float32s reads a length-prefixed float32 slice.
func (r *Reader) Float32s() ([]float32, error) {
	n, err := r.Int()
	if err != nil || n < 0 || n > r.Remaining()/4 {
		return nil, ErrCorrupt
	}
	out := make([]float32, n)
	if err := r.readFloat32s(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Float32sInto reads a length-prefixed float32 slice directly into dst,
// which must have exactly the encoded length — the restore hot path, free of
// the transient slice Float32s allocates.
func (r *Reader) Float32sInto(dst []float32) error {
	n, err := r.Int()
	if err != nil || n < 0 || n > r.Remaining()/4 {
		return ErrCorrupt
	}
	if n != len(dst) {
		return fmt.Errorf("%w: %d encoded floats into buffer of %d", ErrCorrupt, n, len(dst))
	}
	return r.readFloat32s(dst)
}

// readFloat32s bulk-decodes len(dst) floats from the buffer into dst.
func (r *Reader) readFloat32s(dst []float32) error {
	b, err := r.take(4 * len(dst))
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return nil
}

// Ints reads a length-prefixed int slice.
func (r *Reader) Ints() ([]int, error) {
	n, err := r.Int()
	if err != nil || n < 0 || n > r.Remaining()/8 {
		return nil, ErrCorrupt
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = r.Int(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Tensor reads a tensor written by PutTensor. Corrupted shapes (negative or
// implausibly large dimensions, or a numel that cannot fit in the remaining
// bytes) are rejected before any data decoding or allocation.
func (r *Reader) Tensor() (*tensor.Tensor, error) {
	shape, err := r.Ints()
	if err != nil {
		return nil, err
	}
	numel, err := r.checkShape(shape)
	if err != nil {
		return nil, err
	}
	data, err := r.Float32s()
	if err != nil {
		return nil, err
	}
	if len(data) != numel {
		return nil, fmt.Errorf("%w: tensor shape %v vs %d elements", ErrCorrupt, shape, len(data))
	}
	return tensor.FromData(data, shape...), nil
}

// checkShape validates a decoded shape and returns its element count. A shape
// whose numel exceeds what the unread bytes could possibly hold is corrupt by
// construction — rejecting it here means a truncated or shape-mangled frame
// fails before the data section is decoded, not after.
func (r *Reader) checkShape(shape []int) (int, error) {
	numel := 1
	for _, d := range shape {
		if d < 0 || (d > 0 && numel > maxFrame/d) {
			return 0, fmt.Errorf("%w: implausible tensor shape %v", ErrCorrupt, shape)
		}
		numel *= d
	}
	if numel > r.Remaining()/4 {
		return 0, fmt.Errorf("%w: tensor shape %v needs %d floats, %d bytes remain",
			ErrCorrupt, shape, numel, r.Remaining())
	}
	return numel, nil
}

// maxFrame bounds a single decoded tensor's element count against
// allocation-bomb corruption.
const maxFrame = 1 << 31

// maxDims bounds the rank of a decoded tensor shape. Nothing in the model zoo
// is deeper than 4-D; 8 leaves headroom while keeping TensorInto's
// stack-allocated shape scratch small.
const maxDims = 8

// TensorInto reads a tensor into an existing buffer, enforcing equal size —
// the restore path for parameters whose shapes are defined by the model. The
// shape is staged in a fixed-size stack buffer and the floats are decoded
// straight into dst.Data, so restoring a full model performs zero transient
// allocations.
func (r *Reader) TensorInto(dst *tensor.Tensor) error {
	rank, err := r.Int()
	if err != nil || rank < 0 || rank > maxDims {
		return fmt.Errorf("%w: tensor rank %d", ErrCorrupt, rank)
	}
	var dims [maxDims]int
	shape := dims[:rank]
	for i := range shape {
		if shape[i], err = r.Int(); err != nil {
			return err
		}
	}
	numel, err := r.checkShape(shape)
	if err != nil {
		return err
	}
	if numel != dst.Size() {
		return fmt.Errorf("%w: restoring %v into %v", ErrCorrupt, shape, dst.Shape())
	}
	return r.Float32sInto(dst.Data)
}

// RNGState reads a serialized RNG state.
func (r *Reader) RNGState() (rng.State, error) {
	var st rng.State
	for i := range st.S {
		w, err := r.Uint64()
		if err != nil {
			return st, err
		}
		st.S[i] = w
	}
	return st, nil
}
