package checkpoint

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter()
	w.PutUint64(42)
	w.PutInt(-7)
	w.PutBool(true)
	w.PutBool(false)
	w.PutFloat64(3.14159)
	w.PutString("easyscale")

	r := NewReader(w.Bytes())
	if v, _ := r.Uint64(); v != 42 {
		t.Fatal("uint64")
	}
	if v, _ := r.Int(); v != -7 {
		t.Fatal("int")
	}
	if v, _ := r.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := r.Bool(); v {
		t.Fatal("bool false")
	}
	if v, _ := r.Float64(); v != 3.14159 {
		t.Fatal("float64")
	}
	if v, _ := r.String(); v != "easyscale" {
		t.Fatal("string")
	}
	if r.Remaining() != 0 {
		t.Fatal("unread bytes left")
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	f := func(fs []float32, is []int16) bool {
		ints := make([]int, len(is))
		for i, v := range is {
			ints[i] = int(v)
		}
		w := NewWriter()
		w.PutFloat32s(fs)
		w.PutInts(ints)
		r := NewReader(w.Bytes())
		gf, err := r.Float32s()
		if err != nil || len(gf) != len(fs) {
			return false
		}
		for i := range fs {
			if math.Float32bits(gf[i]) != math.Float32bits(fs[i]) {
				return false
			}
		}
		gi, err := r.Ints()
		if err != nil || len(gi) != len(ints) {
			return false
		}
		for i := range ints {
			if gi[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTensorRoundTripBitwise(t *testing.T) {
	src := tensor.New(3, 4)
	s := rng.New(9)
	for i := range src.Data {
		src.Data[i] = s.NormFloat32()
	}
	src.Data[0] = float32(math.NaN())
	src.Data[1] = float32(math.Inf(1))

	w := NewWriter()
	w.PutTensor(src)
	r := NewReader(w.Bytes())
	got, err := r.Tensor()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(src) {
		t.Fatal("tensor round trip not bitwise (NaN/Inf must survive)")
	}
}

func TestTensorInto(t *testing.T) {
	src := tensor.FromData([]float32{1, 2, 3, 4}, 2, 2)
	w := NewWriter()
	w.PutTensor(src)
	dst := tensor.New(2, 2)
	if err := NewReader(w.Bytes()).TensorInto(dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src) {
		t.Fatal("TensorInto mismatch")
	}
	// size mismatch
	w2 := NewWriter()
	w2.PutTensor(src)
	if err := NewReader(w2.Bytes()).TensorInto(tensor.New(3)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	s := rng.New(123)
	s.Uint64()
	st := s.State()
	w := NewWriter()
	w.PutRNGState(st)
	got, err := NewReader(w.Bytes()).RNGState()
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatal("RNG state round trip mismatch")
	}
	if rng.Restore(got).Uint64() != rng.Restore(st).Uint64() {
		t.Fatal("restored streams diverge")
	}
}

func TestTruncationErrors(t *testing.T) {
	w := NewWriter()
	w.PutTensor(tensor.Full(1, 8))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut += 5 {
		r := NewReader(full[:cut])
		if _, err := r.Tensor(); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	w := NewWriter()
	w.PutInt(1 << 40) // absurd length prefix
	if _, err := NewReader(w.Bytes()).Float32s(); !errors.Is(err, ErrCorrupt) {
		t.Fatal("oversized length prefix must be rejected")
	}
	w2 := NewWriter()
	w2.PutInt(-3)
	if _, err := NewReader(w2.Bytes()).Ints(); !errors.Is(err, ErrCorrupt) {
		t.Fatal("negative length prefix must be rejected")
	}
	w3 := NewWriter()
	w3.PutInt(-1)
	if _, err := NewReader(w3.Bytes()).String(); !errors.Is(err, ErrCorrupt) {
		t.Fatal("negative string length must be rejected")
	}
}

func TestWriterLen(t *testing.T) {
	w := NewWriter()
	if w.Len() != 0 {
		t.Fatal("fresh writer should be empty")
	}
	w.PutUint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d, want 8", w.Len())
	}
}
