package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// randomManifest builds a manifest whose shards are real encoded bytes, so
// entry hashes and lengths are honest content addresses.
func randomManifest(s *rng.Stream, groups int) (Manifest, *ShardSet) {
	m := Manifest{Progress: int64(s.Intn(1 << 30))}
	set := NewShardSet()
	for g := 0; g < groups; g++ {
		w := NewWriter()
		// a random tag keeps shard contents distinct across groups and
		// manifests (an empty float section would otherwise make every empty
		// group one shared content address)
		w.PutUint64(s.Uint64())
		n := s.Intn(64)
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = s.NormFloat32()
		}
		w.PutFloat32s(buf)
		b := w.Bytes()
		h := HashBytes(b)
		m.Entries = append(m.Entries, ManifestEntry{ID: fmt.Sprintf("group/%04d", g), Hash: h, Len: len(b)})
		if err := set.Add(h, b); err != nil {
			panic(err)
		}
	}
	return m, set
}

func manifestsEqual(a, b Manifest) bool {
	if a.Progress != b.Progress || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// TestManifestRoundTripProperty: encode/decode is the identity on manifests,
// and re-encoding is bitwise stable — the property the shard directory and
// every peer fetch plan rest on.
func TestManifestRoundTripProperty(t *testing.T) {
	s := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		m, _ := randomManifest(s, s.Intn(20))
		enc := m.Encode()
		got, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !manifestsEqual(m, got) {
			t.Fatalf("trial %d: manifest round trip mismatch", trial)
		}
		re := got.Encode()
		if string(re) != string(enc) {
			t.Fatalf("trial %d: re-encode not bitwise stable", trial)
		}
	}
}

// TestManifestDiffProperty: Diff returns exactly the entries whose content
// hash is absent from prev, in manifest order — the incremental-ship set.
func TestManifestDiffProperty(t *testing.T) {
	s := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		prev, _ := randomManifest(s, 1+s.Intn(15))
		next := Manifest{Progress: prev.Progress + 1}
		kept := map[uint64]bool{}
		var wantDelta []ManifestEntry
		for i, e := range prev.Entries {
			if s.Bernoulli(0.5) {
				// unchanged group: same content, possibly renamed
				e.ID = fmt.Sprintf("renamed/%04d", i)
				next.Entries = append(next.Entries, e)
				kept[e.Hash] = true
			}
		}
		fresh, _ := randomManifest(s, s.Intn(6))
		for _, e := range fresh.Entries {
			next.Entries = append(next.Entries, e)
			if !kept[e.Hash] {
				wantDelta = append(wantDelta, e)
			}
		}
		got := next.Diff(prev)
		if len(got) != len(wantDelta) {
			t.Fatalf("trial %d: delta has %d entries, want %d", trial, len(got), len(wantDelta))
		}
		for i := range got {
			if got[i] != wantDelta[i] {
				t.Fatalf("trial %d: delta entry %d = %+v, want %+v", trial, i, got[i], wantDelta[i])
			}
		}
	}
}

// TestContainerRoundTrip: a container reproduces its manifest and every
// shard bitwise, and duplicate content is stored once.
func TestContainerRoundTrip(t *testing.T) {
	s := rng.New(43)
	m, set := randomManifest(s, 8)
	// two extra groups sharing one content: the container must dedup them
	dup := []byte("identical-moment-shard")
	h := HashBytes(dup)
	if err := set.Add(h, dup); err != nil {
		t.Fatal(err)
	}
	m.Entries = append(m.Entries,
		ManifestEntry{ID: "dup/0000", Hash: h, Len: len(dup)},
		ManifestEntry{ID: "dup/0001", Hash: h, Len: len(dup)})

	enc, err := EncodeContainer(m, set)
	if err != nil {
		t.Fatal(err)
	}
	gotM, gotSet, err := DecodeContainer(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !manifestsEqual(m, gotM) {
		t.Fatal("container manifest mismatch")
	}
	if gotSet.Len() != set.Len() {
		t.Fatalf("container holds %d shards, want %d (dedup)", gotSet.Len(), set.Len())
	}
	for _, e := range m.Entries {
		want, _ := set.Get(e.Hash)
		got, ok := gotSet.Get(e.Hash)
		if !ok || string(got) != string(want) {
			t.Fatalf("shard %q not reproduced bitwise", e.ID)
		}
	}
}

// TestContainerCorruptionAlwaysErrCorrupt: truncations and bit flips of a
// valid container decode to ErrCorrupt, never a panic or a foreign error.
// The content addresses make every shard byte load-bearing.
func TestContainerCorruptionAlwaysErrCorrupt(t *testing.T) {
	s := rng.New(44)
	m, set := randomManifest(s, 6)
	base, err := EncodeContainer(m, set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		if s.Bernoulli(0.5) {
			data = data[:s.Intn(len(data))]
		} else {
			for k := 0; k <= s.Intn(4); k++ {
				data[s.Intn(len(data))] ^= byte(1 + s.Intn(255))
			}
		}
		if _, _, err := DecodeContainer(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("iteration %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// TestShardSetAddVerifiesAddress: a shard whose bytes do not hash to the
// claimed address is rejected — the property that makes fetching from any
// peer safe.
func TestShardSetAddVerifiesAddress(t *testing.T) {
	set := NewShardSet()
	b := []byte("shard-bytes")
	if err := set.Add(HashBytes(b), b); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(HashBytes(b)^1, b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong content address accepted: %v", err)
	}
	if set.Len() != 1 {
		t.Fatalf("set holds %d shards, want 1", set.Len())
	}
}

// TestShardSetMissingDeterministic: Missing reports manifest order with
// duplicate hashes collapsed, independent of insertion history.
func TestShardSetMissingDeterministic(t *testing.T) {
	s := rng.New(45)
	m, set := randomManifest(s, 10)
	partial := NewShardSet()
	for i, e := range m.Entries {
		if i%2 == 0 {
			b, _ := set.Get(e.Hash)
			if err := partial.Add(e.Hash, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	miss := partial.Missing(m)
	for i := 1; i < len(miss); i++ {
		if miss[i-1].ID >= miss[i].ID {
			t.Fatal("missing list not in manifest order")
		}
	}
	for _, e := range miss {
		if partial.Has(e.Hash) {
			t.Fatalf("missing list names held shard %q", e.ID)
		}
	}
	if len(miss) != 5 {
		t.Fatalf("missing %d shards, want 5", len(miss))
	}
}

// FuzzShardManifest: decoding arbitrary bytes as a manifest must never panic
// and never allocate beyond the input's own size class; every failure wraps
// ErrCorrupt, and every success re-encodes bitwise.
func FuzzShardManifest(f *testing.F) {
	s := rng.New(46)
	m, _ := randomManifest(s, 5)
	valid := m.Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	empty := Manifest{}
	f.Add(empty.Encode())
	// count bomb with a valid checksum: an entry count no payload backs must
	// be rejected by the Remaining-based bound, not trusted by make
	bomb := NewWriter()
	bomb.PutUint64(manifestMagic)
	bomb.PutInt(manifestVersion)
	bomb.PutUint64(0)
	bomb.PutInt(1 << 40)
	bomb.PutUint64(uint64(crc32.ChecksumIEEE(bomb.Bytes())))
	f.Add(bomb.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("manifest error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if len(m.Entries) > len(data)/24 {
			t.Fatalf("decoded %d entries from %d bytes (over-allocation)", len(m.Entries), len(data))
		}
		re := m.Encode()
		got, err := DecodeManifest(re)
		if err != nil || !manifestsEqual(m, got) {
			t.Fatalf("accepted manifest does not round trip: %v", err)
		}
	})
}

// TestTensorIntoZeroAllocs pins the restore-path property TensorInto exists
// for: decoding into a preallocated destination performs zero transient
// allocations, no matter how many tensors stream through.
func TestTensorIntoZeroAllocs(t *testing.T) {
	src := tensor.New(32, 16)
	s := rng.New(47)
	for i := range src.Data {
		src.Data[i] = s.NormFloat32()
	}
	w := NewWriter()
	w.PutTensor(src)
	enc := w.Bytes()
	dst := tensor.New(32, 16)
	allocs := testing.AllocsPerRun(200, func() {
		if err := NewReader(enc).TensorInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	// the one permitted allocation is the Reader header itself; the decode —
	// shape staging and float conversion — must not allocate at all (it used
	// to materialize a transient []float32 the size of the tensor)
	if allocs > 1 {
		t.Fatalf("TensorInto allocates %.1f objects per decode, want at most the reader header", allocs)
	}
	if !dst.Equal(src) {
		t.Fatal("TensorInto decode mismatch")
	}
}

// BenchmarkPutFloat32s pins the encode hot path: PutFloat32s must pre-grow
// the buffer once per call instead of relying on append's doubling.
func BenchmarkPutFloat32s(b *testing.B) {
	buf := make([]float32, 64*1024)
	b.SetBytes(int64(4 * len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		w.PutFloat32s(buf)
	}
}

// BenchmarkPutTensor covers the full tensor encode (shape + data).
func BenchmarkPutTensor(b *testing.B) {
	src := tensor.New(256, 256)
	b.SetBytes(int64(4 * len(src.Data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		w.PutTensor(src)
	}
}
