package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// fuzzSeedBlob builds a valid encoding touching every writer primitive.
func fuzzSeedBlob() []byte {
	w := NewWriter()
	w.PutUint64(7)
	w.PutInt(-3)
	w.PutBool(true)
	w.PutFloat64(3.5)
	w.PutString("easy-scale")
	w.PutFloat32s([]float32{1, 2, 3})
	w.PutInts([]int{4, 5})
	w.PutTensor(tensor.FromData([]float32{1, 2, 3, 4}, 2, 2))
	w.PutRNGState(rng.New(1).State())
	return w.Bytes()
}

// FuzzReader: decoding arbitrary bytes through every typed read must never
// panic; each failure must surface as (or wrap) ErrCorrupt, so corrupt
// checkpoints are always rejected cleanly.
func FuzzReader(f *testing.F) {
	f.Add(fuzzSeedBlob())
	f.Add([]byte{})
	f.Add(fuzzSeedBlob()[:11])
	// shape/data mismatch seeds: tensors whose shape numel disagrees with the
	// data section's element count, in both directions — Tensor must reject
	// them via the numel-vs-Remaining cross-check, not crash or misread
	over := NewWriter()
	over.PutInts([]int{2, 3})
	over.PutFloat32s([]float32{1, 2, 3, 4})
	f.Add(over.Bytes())
	under := NewWriter()
	under.PutInts([]int{2})
	under.PutFloat32s([]float32{1, 2, 3, 4})
	f.Add(under.Bytes())
	// count-bomb seeds: a declared element count the remaining bytes cannot
	// possibly back must be rejected by the length-vs-Remaining cross-check
	// before any allocation. The padding steers the walk's read rotation so
	// the bomb is hit through String, Float32s, Ints, and Tensor.
	for _, pad := range []int{0, 1, 2, 6} {
		bomb := NewWriter()
		bomb.PutInt(1 << 40)
		for i := 0; i < pad; i++ {
			bomb.PutBool(false)
		}
		f.Add(bomb.Bytes())
	}

	check := func(t *testing.T, err error) {
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("reader error does not wrap ErrCorrupt: %v", err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for r.Remaining() > 0 {
			// walk the buffer through a rotation of every typed read; any
			// error must be ErrCorrupt and must stop the walk
			var err error
			switch r.Remaining() % 7 {
			case 0:
				_, err = r.Tensor()
			case 1:
				_, err = r.String()
			case 2:
				_, err = r.Float32s()
			case 3:
				_, err = r.Ints()
			case 4:
				_, err = r.RNGState()
			case 5:
				_, err = r.Float64()
			default:
				_, err = r.Bool()
			}
			if err != nil {
				check(t, err)
				return
			}
		}
		// draining past the end must also fail cleanly
		if _, err := r.Uint64(); err != nil {
			check(t, err)
		}
		if err := r.TensorInto(tensor.FromData([]float32{0}, 1)); err != nil {
			check(t, err)
		}
	})
}

// TestReaderCorruptionAlwaysErrCorrupt is the deterministic smoke of the
// fuzz property: truncations and bit flips of a valid blob decode to either
// valid values or ErrCorrupt, never a panic or a foreign error.
func TestReaderCorruptionAlwaysErrCorrupt(t *testing.T) {
	base := fuzzSeedBlob()
	s := rng.New(2026)
	for i := 0; i < 3000; i++ {
		data := append([]byte(nil), base...)
		if s.Bernoulli(0.5) {
			data = data[:s.Intn(len(data))]
		} else {
			for k := 0; k <= s.Intn(4); k++ {
				data[s.Intn(len(data))] ^= byte(1 + s.Intn(255))
			}
		}
		r := NewReader(data)
		for {
			_, err := r.String()
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("iteration %d: error %v does not wrap ErrCorrupt", i, err)
				}
				break
			}
			if r.Remaining() == 0 {
				break
			}
			if _, err := r.Tensor(); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("iteration %d: error %v does not wrap ErrCorrupt", i, err)
				}
				break
			}
			if r.Remaining() == 0 {
				break
			}
		}
	}
}
