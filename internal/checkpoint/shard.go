// Sharded checkpoint layer: content-addressed shards plus a manifest.
//
// A checkpoint is no longer one opaque blob. The job's state is cut into
// named groups (parameters, optimizer moments, EST contexts, a small
// metadata group), each encoded independently into a shard addressed by the
// FNV-1a hash of its bytes. A manifest lists the groups in canonical order
// with their content hashes; the shard bytes travel separately and can be
// deduplicated, shipped incrementally (only hashes the receiver does not
// hold), fetched from multiple peers in parallel, and reassembled in any
// order — the manifest, not arrival order, defines the decoded layout, so
// transport scheduling cannot affect numerics.
package checkpoint

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// Container/manifest magics guard against foreign byte streams; the version
// guards against format drift.
const (
	manifestMagic   = 0xEA57_5CA1_E51A_0001
	containerMagic  = 0xEA57_5CA1_E51A_0002
	manifestVersion = 1

	// maxShardID bounds a group identifier; maxShards bounds the entry count
	// of a decoded manifest. Both exist so corrupt counts are rejected before
	// allocation, like maxFrame for tensors.
	maxShardID = 256
	maxShards  = 1 << 20
)

// HashBytes content-addresses a shard: FNV-1a over its encoded bytes. The
// same function the tensor package uses for state hashing, so a shard's
// address is stable across processes and architectures.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ManifestEntry names one state group: its identifier, the content hash of
// its encoded bytes, and their length.
type ManifestEntry struct {
	ID   string
	Hash uint64
	Len  int
}

// Manifest is the ordered table of contents of a sharded checkpoint.
// Progress carries the global step the snapshot was taken at, so a recovery
// path can pick the freshest of several manifests without decoding shards.
type Manifest struct {
	Progress int64
	Entries  []ManifestEntry
}

// TotalLen returns the summed encoded length of all groups.
func (m Manifest) TotalLen() int {
	n := 0
	for _, e := range m.Entries {
		n += e.Len
	}
	return n
}

// Diff returns the entries of m whose content is absent from prev — the
// incremental delta. Content-addressed: a group that changed ID but kept
// bytes (or vice versa) is judged by hash, which is what a receiver holding
// prev's shards actually needs shipped.
func (m Manifest) Diff(prev Manifest) []ManifestEntry {
	have := make(map[uint64]bool, len(prev.Entries))
	for _, e := range prev.Entries {
		have[e.Hash] = true
	}
	var out []ManifestEntry
	for _, e := range m.Entries {
		if !have[e.Hash] {
			out = append(out, e)
		}
	}
	return out
}

// Encode serializes the manifest with magic, version, and CRC trailer.
func (m Manifest) Encode() []byte {
	w := NewWriter()
	w.PutUint64(manifestMagic)
	w.PutInt(manifestVersion)
	w.PutUint64(uint64(m.Progress))
	w.PutInt(len(m.Entries))
	for _, e := range m.Entries {
		w.PutString(e.ID)
		w.PutUint64(e.Hash)
		w.PutInt(e.Len)
	}
	payload := w.Bytes()
	w.PutUint64(uint64(crc32.ChecksumIEEE(payload)))
	return w.Bytes()
}

// DecodeManifest parses a manifest encoded by Encode. Every malformed input
// — truncation, bad magic or version, corrupt counts, oversized IDs or
// lengths, trailing garbage — yields an error wrapping ErrCorrupt; no input
// panics or allocates beyond its own length.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 8 {
		return m, fmt.Errorf("%w: manifest too short", ErrCorrupt)
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	sum, err := NewReader(trailer).Uint64()
	if err != nil || uint32(sum) != crc32.ChecksumIEEE(payload) {
		return m, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	r := NewReader(payload)
	if magic, err := r.Uint64(); err != nil || magic != manifestMagic {
		return m, fmt.Errorf("%w: not a shard manifest", ErrCorrupt)
	}
	if v, err := r.Int(); err != nil || v != manifestVersion {
		return m, fmt.Errorf("%w: unsupported manifest version", ErrCorrupt)
	}
	prog, err := r.Uint64()
	if err != nil {
		return m, err
	}
	m.Progress = int64(prog)
	n, err := r.Int()
	// each entry is at least 24 bytes (ID length prefix + hash + len), so a
	// count the payload cannot hold is rejected before allocation
	if err != nil || n < 0 || n > maxShards || n > r.Remaining()/24 {
		return m, fmt.Errorf("%w: manifest entry count %d", ErrCorrupt, n)
	}
	m.Entries = make([]ManifestEntry, n)
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.ID, err = r.String(); err != nil {
			return m, err
		}
		if len(e.ID) == 0 || len(e.ID) > maxShardID {
			return m, fmt.Errorf("%w: manifest entry id length %d", ErrCorrupt, len(e.ID))
		}
		if e.Hash, err = r.Uint64(); err != nil {
			return m, err
		}
		if e.Len, err = r.Int(); err != nil {
			return m, err
		}
		if e.Len < 0 || e.Len > maxFrame {
			return m, fmt.Errorf("%w: manifest entry length %d", ErrCorrupt, e.Len)
		}
	}
	if r.Remaining() != 0 {
		return m, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, r.Remaining())
	}
	return m, nil
}

// ShardSet is a content-addressed store of shard bytes, keyed by hash.
type ShardSet struct {
	byHash map[uint64][]byte
}

// NewShardSet returns an empty store.
func NewShardSet() *ShardSet {
	return &ShardSet{byHash: make(map[uint64][]byte)}
}

// Add stores shard bytes under hash after verifying the content address —
// a shard whose bytes do not hash to its claimed address is corrupt,
// whichever peer it came from. Idempotent for identical content.
func (s *ShardSet) Add(hash uint64, data []byte) error {
	if HashBytes(data) != hash {
		return fmt.Errorf("%w: shard content does not match address %016x", ErrCorrupt, hash)
	}
	s.byHash[hash] = data
	return nil
}

// Get returns the shard bytes stored under hash.
func (s *ShardSet) Get(hash uint64) ([]byte, bool) {
	b, ok := s.byHash[hash]
	return b, ok
}

// Has reports whether the store holds content for hash.
func (s *ShardSet) Has(hash uint64) bool {
	_, ok := s.byHash[hash]
	return ok
}

// Len returns the number of distinct shards held.
func (s *ShardSet) Len() int { return len(s.byHash) }

// Missing returns the manifest entries whose content the store lacks, in
// manifest order with duplicate hashes reported once — the fetch list for a
// joining worker. Ordered iteration over the manifest, never over the map,
// keeps the result deterministic.
func (s *ShardSet) Missing(m Manifest) []ManifestEntry {
	seen := make(map[uint64]bool, len(m.Entries))
	var out []ManifestEntry
	for _, e := range m.Entries {
		if seen[e.Hash] || s.Has(e.Hash) {
			continue
		}
		seen[e.Hash] = true
		out = append(out, e)
	}
	return out
}

// EncodeContainer packs a manifest and the shards it references into one
// self-contained byte stream — the at-rest and bootstrap-transport form of a
// sharded checkpoint. Shards appear once per distinct hash, in first
// reference order, so groups with identical content (for example zeroed
// momentum tensors of equal shape) are stored once.
func EncodeContainer(m Manifest, s *ShardSet) ([]byte, error) {
	w := NewWriter()
	w.PutUint64(containerMagic)
	mb := m.Encode()
	w.PutString(string(mb))
	order := make([]uint64, 0, len(m.Entries))
	seen := make(map[uint64]bool, len(m.Entries))
	for _, e := range m.Entries {
		if seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		order = append(order, e.Hash)
	}
	w.PutInt(len(order))
	for _, h := range order {
		b, ok := s.Get(h)
		if !ok {
			return nil, fmt.Errorf("checkpoint: container missing shard %016x", h)
		}
		w.PutUint64(h)
		w.PutString(string(b))
	}
	payload := w.Bytes()
	w.PutUint64(uint64(crc32.ChecksumIEEE(payload)))
	return w.Bytes(), nil
}

// DecodeContainer unpacks a container, verifying the outer CRC, the
// manifest, and every shard's content address, and checking that the store
// covers the manifest. Errors wrap ErrCorrupt.
func DecodeContainer(data []byte) (Manifest, *ShardSet, error) {
	var m Manifest
	if len(data) < 8 {
		return m, nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	sum, err := NewReader(trailer).Uint64()
	if err != nil || uint32(sum) != crc32.ChecksumIEEE(payload) {
		return m, nil, fmt.Errorf("%w: container checksum mismatch", ErrCorrupt)
	}
	r := NewReader(payload)
	if magic, err := r.Uint64(); err != nil || magic != containerMagic {
		return m, nil, fmt.Errorf("%w: not a shard container", ErrCorrupt)
	}
	mb, err := r.String()
	if err != nil {
		return m, nil, err
	}
	if m, err = DecodeManifest([]byte(mb)); err != nil {
		return m, nil, err
	}
	n, err := r.Int()
	// hash + length prefix = 16 bytes minimum per shard
	if err != nil || n < 0 || n > maxShards || n > r.Remaining()/16 {
		return m, nil, fmt.Errorf("%w: container shard count %d", ErrCorrupt, n)
	}
	set := NewShardSet()
	for i := 0; i < n; i++ {
		h, err := r.Uint64()
		if err != nil {
			return m, nil, err
		}
		b, err := r.String()
		if err != nil {
			return m, nil, err
		}
		if err := set.Add(h, []byte(b)); err != nil {
			return m, nil, err
		}
	}
	if r.Remaining() != 0 {
		return m, nil, fmt.Errorf("%w: %d trailing container bytes", ErrCorrupt, r.Remaining())
	}
	for _, e := range m.Entries {
		b, ok := set.Get(e.Hash)
		if !ok {
			return m, nil, fmt.Errorf("%w: container lacks shard %q", ErrCorrupt, e.ID)
		}
		if len(b) != e.Len {
			return m, nil, fmt.Errorf("%w: shard %q is %d bytes, manifest says %d", ErrCorrupt, e.ID, len(b), e.Len)
		}
	}
	return m, set, nil
}
