// Package data implements the EasyScale data pipeline: synthetic datasets
// standing in for the paper's open datasets, the elastic distributed sampler
// that assigns global indices to EasyScaleThreads, and the shared data-worker
// pool with the RNG queuing buffer of Figure 7.
//
// Datasets are deterministic functions of (seed, index): item i is generated
// on demand from a counter-derived RNG stream, so a "dataset" of any size
// costs no memory and two processes with the same seed observe bitwise
// identical data. Augmentation draws from a caller-provided stream, which is
// exactly the RNG state the queuing buffer must record for elastic restarts.
package data

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset yields training items on demand.
type Dataset interface {
	// Len returns the number of items.
	Len() int
	// InputShape returns the shape of one input item (without batch dim).
	InputShape() []int
	// NumClasses returns the label arity.
	NumClasses() int
	// Sample materializes item i into dst (of InputShape size) and returns
	// its label. If aug is non-nil, data augmentation draws from it.
	Sample(i int, dst []float32, aug *rng.Stream) int
}

// SyntheticImages is a CIFAR10-like classification dataset: each class has a
// fixed prototype pattern and items are the prototype plus item-seeded noise.
// Augmentation applies a random horizontal flip and a ±2 pixel shift, the
// standard CIFAR recipe.
type SyntheticImages struct {
	N, Classes int
	C, H, W    int
	seed       uint64
	protos     []float32 // Classes × C×H×W
	NoiseStd   float32
}

// NewSyntheticImages builds the dataset. Prototypes are derived from seed.
func NewSyntheticImages(n, classes, c, h, w int, seed uint64) *SyntheticImages {
	d := &SyntheticImages{N: n, Classes: classes, C: c, H: h, W: w, seed: seed, NoiseStd: 0.3}
	sz := c * h * w
	d.protos = make([]float32, classes*sz)
	for cl := 0; cl < classes; cl++ {
		s := rng.NewNamed(seed, fmt.Sprintf("proto-%d", cl))
		for j := 0; j < sz; j++ {
			d.protos[cl*sz+j] = s.NormFloat32()
		}
	}
	return d
}

// Len returns the dataset size.
func (d *SyntheticImages) Len() int { return d.N }

// InputShape returns [C, H, W].
func (d *SyntheticImages) InputShape() []int { return []int{d.C, d.H, d.W} }

// NumClasses returns the label arity.
func (d *SyntheticImages) NumClasses() int { return d.Classes }

// Sample generates item i: class prototype + noise, optionally augmented.
func (d *SyntheticImages) Sample(i int, dst []float32, aug *rng.Stream) int {
	sz := d.C * d.H * d.W
	if len(dst) != sz {
		panic(fmt.Sprintf("data: Sample dst size %d, want %d", len(dst), sz))
	}
	label := i % d.Classes
	noise := rng.NewNamed(d.seed, fmt.Sprintf("item-%d", i))
	copy(dst, d.protos[label*sz:(label+1)*sz])
	for j := range dst {
		dst[j] += noise.NormFloat32() * d.NoiseStd
	}
	if aug != nil {
		d.augment(dst, aug)
	}
	return label
}

// augment applies flip + shift drawn from the stream (in a fixed draw order,
// so the stream state fully determines the result).
func (d *SyntheticImages) augment(img []float32, aug *rng.Stream) {
	flip := aug.Bernoulli(0.5)
	dy := aug.Intn(5) - 2
	dx := aug.Intn(5) - 2
	tmp := make([]float32, d.H*d.W)
	for c := 0; c < d.C; c++ {
		plane := img[c*d.H*d.W : (c+1)*d.H*d.W]
		copy(tmp, plane)
		for y := 0; y < d.H; y++ {
			for x := 0; x < d.W; x++ {
				sx := x
				if flip {
					sx = d.W - 1 - x
				}
				sy, sxx := y+dy, sx+dx
				var v float32
				if sy >= 0 && sy < d.H && sxx >= 0 && sxx < d.W {
					v = tmp[sy*d.W+sxx]
				}
				plane[y*d.W+x] = v
			}
		}
	}
}

// SyntheticInteractions is a MovieLens-like implicit-feedback dataset for the
// recommendation workload: items are (user, item) id pairs, labels follow a
// latent dot-product model.
type SyntheticInteractions struct {
	N            int
	Users, Items int
	Dim          int
	seed         uint64
	uLat, iLat   []float32
}

// NewSyntheticInteractions builds the dataset with latent factors from seed.
func NewSyntheticInteractions(n, users, items int, seed uint64) *SyntheticInteractions {
	d := &SyntheticInteractions{N: n, Users: users, Items: items, Dim: 8, seed: seed}
	us := rng.NewNamed(seed, "user-latent")
	is := rng.NewNamed(seed, "item-latent")
	d.uLat = make([]float32, users*d.Dim)
	d.iLat = make([]float32, items*d.Dim)
	for j := range d.uLat {
		d.uLat[j] = us.NormFloat32()
	}
	for j := range d.iLat {
		d.iLat[j] = is.NormFloat32()
	}
	return d
}

// Len returns the dataset size.
func (d *SyntheticInteractions) Len() int { return d.N }

// InputShape returns [2]: user id, item id.
func (d *SyntheticInteractions) InputShape() []int { return []int{2} }

// NumClasses returns 2 (positive / negative interaction).
func (d *SyntheticInteractions) NumClasses() int { return 2 }

// Sample draws a (user, item) pair for index i; the label is 1 when the
// latent affinity is positive.
func (d *SyntheticInteractions) Sample(i int, dst []float32, aug *rng.Stream) int {
	if len(dst) != 2 {
		panic("data: interaction Sample dst size")
	}
	s := rng.NewNamed(d.seed, fmt.Sprintf("inter-%d", i))
	u := s.Intn(d.Users)
	it := s.Intn(d.Items)
	dst[0], dst[1] = float32(u), float32(it)
	var dot float32
	for j := 0; j < d.Dim; j++ {
		dot += d.uLat[u*d.Dim+j] * d.iLat[it*d.Dim+j]
	}
	if dot > 0 {
		return 1
	}
	return 0
}

// SyntheticTokens is a SQuAD-stand-in token classification dataset for the
// transformer workloads: sequences of token ids whose label depends on a
// keyed sum of the tokens.
type SyntheticTokens struct {
	N, Vocab, SeqLen, Classes int
	seed                      uint64
}

// NewSyntheticTokens builds the dataset.
func NewSyntheticTokens(n, vocab, seqLen, classes int, seed uint64) *SyntheticTokens {
	return &SyntheticTokens{N: n, Vocab: vocab, SeqLen: seqLen, Classes: classes, seed: seed}
}

// Len returns the dataset size.
func (d *SyntheticTokens) Len() int { return d.N }

// InputShape returns [SeqLen].
func (d *SyntheticTokens) InputShape() []int { return []int{d.SeqLen} }

// NumClasses returns the label arity.
func (d *SyntheticTokens) NumClasses() int { return d.Classes }

// Sample generates token ids for item i; the label is a deterministic keyed
// function of the tokens so it is learnable.
func (d *SyntheticTokens) Sample(i int, dst []float32, aug *rng.Stream) int {
	if len(dst) != d.SeqLen {
		panic("data: token Sample dst size")
	}
	s := rng.NewNamed(d.seed, fmt.Sprintf("tok-%d", i))
	sum := 0
	for j := 0; j < d.SeqLen; j++ {
		t := s.Intn(d.Vocab)
		dst[j] = float32(t)
		sum += t * (j + 1)
	}
	return sum % d.Classes
}

// Slice views items [Start, Start+N) of a base dataset — the held-out split
// mechanism: synthetic datasets generate items for any index from the same
// distribution, so a disjoint index range is a proper validation set.
type Slice struct {
	Base     Dataset
	Start, N int
}

// NewSlice builds a dataset view of n items starting at start.
func NewSlice(base Dataset, start, n int) *Slice {
	if start < 0 || n <= 0 {
		panic("data: invalid slice range")
	}
	return &Slice{Base: base, Start: start, N: n}
}

// Len returns the slice size.
func (s *Slice) Len() int { return s.N }

// InputShape returns the base item shape.
func (s *Slice) InputShape() []int { return s.Base.InputShape() }

// NumClasses returns the base label arity.
func (s *Slice) NumClasses() int { return s.Base.NumClasses() }

// Sample materializes base item Start+i.
func (s *Slice) Sample(i int, dst []float32, aug *rng.Stream) int {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("data: slice index %d out of [0,%d)", i, s.N))
	}
	return s.Base.Sample(s.Start+i, dst, aug)
}

// MaterializeBatch fills a batch tensor and label slice from dataset indices,
// drawing augmentation randomness from aug in index order. The draw order is
// part of the training semantics: it must match across elastic restarts.
func MaterializeBatch(ds Dataset, indices []int, aug *rng.Stream) (*tensor.Tensor, []int) {
	shape := append([]int{len(indices)}, ds.InputShape()...)
	x := tensor.New(shape...)
	labels := make([]int, len(indices))
	itemSz := x.Size() / len(indices)
	for bi, idx := range indices {
		labels[bi] = ds.Sample(idx, x.Data[bi*itemSz:(bi+1)*itemSz], aug)
	}
	return x, labels
}
