package data

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func imgDS() *SyntheticImages { return NewSyntheticImages(256, 10, 1, 6, 6, 42) }

func TestSyntheticImagesDeterministic(t *testing.T) {
	d1, d2 := imgDS(), imgDS()
	b1 := make([]float32, 36)
	b2 := make([]float32, 36)
	for i := 0; i < 20; i++ {
		l1 := d1.Sample(i, b1, nil)
		l2 := d2.Sample(i, b2, nil)
		if l1 != l2 {
			t.Fatal("labels diverged")
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatal("pixel data diverged for identical seeds")
			}
		}
	}
}

func TestSyntheticImagesClassStructure(t *testing.T) {
	d := imgDS()
	buf := make([]float32, 36)
	for i := 0; i < 50; i++ {
		if got := d.Sample(i, buf, nil); got != i%10 {
			t.Fatalf("label(%d) = %d, want %d", i, got, i%10)
		}
	}
	if d.NumClasses() != 10 || d.Len() != 256 {
		t.Fatal("metadata wrong")
	}
}

func TestAugmentationDeterministicGivenState(t *testing.T) {
	d := imgDS()
	a := make([]float32, 36)
	b := make([]float32, 36)
	s := rng.New(7)
	st := s.State()
	d.Sample(3, a, s)
	s.SetState(st)
	d.Sample(3, b, s)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("same RNG state must give identical augmented samples")
		}
	}
	// advanced state → (almost surely) different augmentation
	d.Sample(3, b, s)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
			break
		}
	}
	if same {
		t.Log("augmentation happened to repeat (possible but unlikely)")
	}
}

func TestInteractionsDataset(t *testing.T) {
	d := NewSyntheticInteractions(1000, 50, 80, 9)
	buf := make([]float32, 2)
	pos := 0
	for i := 0; i < 200; i++ {
		lbl := d.Sample(i, buf, nil)
		if buf[0] < 0 || buf[0] >= 50 || buf[1] < 0 || buf[1] >= 80 {
			t.Fatalf("ids out of range: %v", buf)
		}
		if lbl == 1 {
			pos++
		}
	}
	if pos == 0 || pos == 200 {
		t.Fatalf("degenerate label distribution: %d/200 positive", pos)
	}
}

func TestTokensDataset(t *testing.T) {
	d := NewSyntheticTokens(500, 100, 8, 4, 11)
	buf := make([]float32, 8)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		lbl := d.Sample(i, buf, nil)
		if lbl < 0 || lbl >= 4 {
			t.Fatalf("label %d out of range", lbl)
		}
		seen[lbl] = true
		for _, v := range buf {
			if v < 0 || v >= 100 {
				t.Fatalf("token %v out of vocab", v)
			}
		}
	}
	if len(seen) < 2 {
		t.Fatal("labels not diverse")
	}
}

func TestSamplerPartitionProperties(t *testing.T) {
	f := func(seedRaw uint16, worldRaw, batchRaw uint8) bool {
		world := int(worldRaw%6) + 1
		batch := int(batchRaw%4) + 1
		n := world*batch*4 + int(seedRaw%7) // includes a dropped tail
		s := NewElasticSampler(n, world, batch, uint64(seedRaw))
		steps := s.StepsPerEpoch()
		seen := map[int]bool{}
		for step := 0; step < steps; step++ {
			for r := 0; r < world; r++ {
				for _, idx := range s.Indices(1, step, r) {
					if idx < 0 || idx >= n || seen[idx] {
						return false // out of range or overlapping
					}
					seen[idx] = true
				}
			}
		}
		return len(seen) == steps*world*batch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerPureFunction(t *testing.T) {
	s1 := NewElasticSampler(128, 4, 8, 5)
	s2 := NewElasticSampler(128, 4, 8, 5)
	// query in different orders; results must match
	a := s1.Indices(2, 3, 1)
	s2.Indices(0, 0, 0)
	s2.Indices(5, 1, 2)
	b := s2.Indices(2, 3, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Indices must be a pure function of (epoch, step, rank)")
		}
	}
}

func TestSamplerEpochsDiffer(t *testing.T) {
	s := NewElasticSampler(128, 2, 8, 5)
	a := s.Indices(0, 0, 0)
	b := s.Indices(1, 0, 0)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch shuffles should differ")
	}
}

func TestSamplerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewElasticSampler(0, 1, 1, 0) },
		func() { NewElasticSampler(4, 8, 1, 0) },
		func() { NewElasticSampler(64, 2, 4, 0).Indices(0, 0, 5) },
		func() { NewElasticSampler(64, 2, 4, 0).Indices(0, 99, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func newLoader(world, batch, k int) *Loader {
	ds := imgDS()
	s := NewElasticSampler(ds.Len(), world, batch, 42)
	return NewLoader(ds, s, k, 42)
}

func TestLoaderInOrderConsumption(t *testing.T) {
	l := newLoader(2, 4, 2)
	l.Batch(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order consumption")
		}
	}()
	l.Batch(2, 0)
}

func TestLoaderDeterministicAcrossInstances(t *testing.T) {
	l1 := newLoader(4, 2, 2)
	l2 := newLoader(4, 2, 2)
	for step := 0; step < 5; step++ {
		for r := 0; r < 4; r++ {
			x1, lab1 := l1.Batch(step, r)
			x2, lab2 := l2.Batch(step, r)
			if !x1.Equal(x2) {
				t.Fatal("loader instances diverged")
			}
			for i := range lab1 {
				if lab1[i] != lab2[i] {
					t.Fatal("labels diverged")
				}
			}
		}
	}
}

// TestLoaderConsumptionOrderIrrelevantAcrossRanks: two physical placements
// consume ranks in different interleavings; batches must be identical.
func TestLoaderConsumptionOrderIrrelevantAcrossRanks(t *testing.T) {
	l1 := newLoader(4, 2, 3)
	l2 := newLoader(4, 2, 3)
	got1 := map[[2]int]uint64{}
	got2 := map[[2]int]uint64{}
	// placement 1: rank-major within step
	for step := 0; step < 4; step++ {
		for r := 0; r < 4; r++ {
			x, _ := l1.Batch(step, r)
			got1[[2]int{step, r}] = x.Hash64()
		}
	}
	// placement 2: each rank runs all its steps consecutively (as when one
	// GPU hosts all ESTs and the loader prefetches per EST)
	for r := 3; r >= 0; r-- {
		for step := 0; step < 4; step++ {
			x, _ := l2.Batch(step, r)
			got2[[2]int{step, r}] = x.Hash64()
		}
	}
	for k, v := range got1 {
		if got2[k] != v {
			t.Fatalf("batch %v differs across consumption orders", k)
		}
	}
}

func TestLoaderPrefetchDoesNotChangeContent(t *testing.T) {
	l1 := newLoader(2, 4, 2)
	l2 := newLoader(2, 4, 2)
	l2.Prefetch(0, 4)
	l2.Prefetch(1, 2)
	for step := 0; step < 6; step++ {
		for r := 0; r < 2; r++ {
			x1, _ := l1.Batch(step, r)
			x2, _ := l2.Batch(step, r)
			if !x1.Equal(x2) {
				t.Fatalf("prefetching changed batch content at step %d rank %d", step, r)
			}
		}
	}
}

func TestLoaderStateRoundTripMidEpoch(t *testing.T) {
	ref := newLoader(2, 4, 2)
	run := newLoader(2, 4, 2)
	// consume a few steps on both
	var want []*tensor.Tensor
	for step := 0; step < 3; step++ {
		for r := 0; r < 2; r++ {
			ref.Batch(step, r)
			run.Batch(step, r)
		}
	}
	// run prefetches ahead, then checkpoints
	run.Prefetch(0, 3)
	st := run.State()

	// reference continues uninterrupted
	for step := 3; step < 6; step++ {
		for r := 0; r < 2; r++ {
			x, _ := ref.Batch(step, r)
			want = append(want, x)
		}
	}

	// a fresh loader restores the snapshot and must reproduce bitwise
	restored := newLoader(2, 4, 2)
	restored.Restore(st)
	i := 0
	for step := 3; step < 6; step++ {
		for r := 0; r < 2; r++ {
			x, _ := restored.Batch(step, r)
			if !x.Equal(want[i]) {
				t.Fatalf("restored loader diverged at step %d rank %d", step, r)
			}
			i++
		}
	}
}

func TestLoaderRestoreValidation(t *testing.T) {
	l := newLoader(2, 4, 2)
	st := l.State()
	bad := newLoader(3, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring mismatched world")
		}
	}()
	bad.Restore(st)
}

func TestLoaderEpochAdvance(t *testing.T) {
	l := newLoader(2, 4, 2)
	x0, _ := l.Batch(0, 0)
	l.SetEpoch(1)
	if l.Epoch() != 1 {
		t.Fatal("epoch not set")
	}
	x1, _ := l.Batch(0, 0)
	if x0.Equal(x1) {
		t.Fatal("different epochs should yield different first batches")
	}
}

func TestFirstBatchLatencySharingWins(t *testing.T) {
	// 8 data workers per training worker, 4 ESTs: naive 32 workers vs shared 4
	naive := FirstBatchLatency(32)
	shared := FirstBatchLatency(4)
	reduction := 1 - shared.Seconds()/naive.Seconds()
	if reduction < 0.5 || reduction > 0.8 {
		t.Fatalf("sharing reduction %.1f%%, want ≈67%%", reduction*100)
	}
}

func TestMaterializeBatchShape(t *testing.T) {
	ds := imgDS()
	x, labels := MaterializeBatch(ds, []int{0, 1, 2}, nil)
	if x.Dim(0) != 3 || x.Dim(1) != 1 || x.Dim(2) != 6 || x.Dim(3) != 6 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(labels) != 3 {
		t.Fatal("labels length")
	}
}

func TestSliceDataset(t *testing.T) {
	base := NewSyntheticImages(100, 10, 1, 4, 4, 3)
	sl := NewSlice(base, 50, 20)
	if sl.Len() != 20 || sl.NumClasses() != 10 || sl.InputShape()[1] != 4 {
		t.Fatal("slice metadata")
	}
	a := make([]float32, 16)
	b := make([]float32, 16)
	la := sl.Sample(0, a, nil)
	lb := base.Sample(50, b, nil)
	if la != lb {
		t.Fatal("slice label must match base at offset")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("slice data must match base at offset")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on out-of-range slice index")
			}
		}()
		sl.Sample(20, a, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on bad slice range")
			}
		}()
		NewSlice(base, -1, 5)
	}()
}

func TestSamplerPrimeIdempotent(t *testing.T) {
	s := NewElasticSampler(64, 2, 4, 9)
	s.Prime(3)
	want := s.Indices(3, 0, 0)
	s.Prime(3)
	got := s.Indices(3, 0, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Prime must be idempotent")
		}
	}
}
