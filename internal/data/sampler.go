package data

import (
	"fmt"

	"repro/internal/rng"
)

// ElasticSampler is EasyScale's distributed data sampler. It partitions each
// epoch's shuffled index sequence across the job's logical workers (ESTs) by
// pure arithmetic on (epoch, step, rank): the assignment depends only on the
// *logical* world size, never on the physical GPU placement, which is what
// lets training move between 4 GPUs, 2 GPUs, or a heterogeneous mix without
// changing a single sample assignment.
//
// Epoch shuffling matches DistributedSampler semantics: a permutation seeded
// by (seed, epoch). The trailing items that do not fill a complete global
// step are dropped (drop_last), as the paper's DDP baselines do.
type ElasticSampler struct {
	N     int    // dataset size
	World int    // number of logical workers (ESTs)
	Batch int    // per-EST mini-batch size
	Seed  uint64 // job-level data seed

	permEpoch int
	perm      []int
}

// NewElasticSampler validates the geometry and builds the sampler.
func NewElasticSampler(n, world, batch int, seed uint64) *ElasticSampler {
	if n <= 0 || world <= 0 || batch <= 0 {
		panic(fmt.Sprintf("data: bad sampler geometry n=%d world=%d batch=%d", n, world, batch))
	}
	if n < world*batch {
		panic(fmt.Sprintf("data: dataset size %d below one global step (%d×%d)", n, world, batch))
	}
	return &ElasticSampler{N: n, World: world, Batch: batch, Seed: seed, permEpoch: -1}
}

// StepsPerEpoch returns the number of global steps per epoch.
func (s *ElasticSampler) StepsPerEpoch() int { return s.N / (s.World * s.Batch) }

// permutation returns the cached epoch permutation.
func (s *ElasticSampler) permutation(epoch int) []int {
	if s.permEpoch != epoch {
		st := rng.NewNamed(s.Seed, fmt.Sprintf("sampler-epoch-%d", epoch))
		s.perm = st.Perm(s.N)
		s.permEpoch = epoch
	}
	return s.perm
}

// Prime materializes the epoch's permutation cache so subsequent Indices
// calls are read-only — required before concurrent use.
func (s *ElasticSampler) Prime(epoch int) { s.permutation(epoch) }

// Indices returns the dataset indices of EST `rank` at global step `step` of
// `epoch`. The result is a pure function of its arguments.
func (s *ElasticSampler) Indices(epoch, step, rank int) []int {
	if rank < 0 || rank >= s.World {
		panic(fmt.Sprintf("data: rank %d out of world %d", rank, s.World))
	}
	if step < 0 || step >= s.StepsPerEpoch() {
		panic(fmt.Sprintf("data: step %d out of epoch (%d steps)", step, s.StepsPerEpoch()))
	}
	perm := s.permutation(epoch)
	base := step*s.World*s.Batch + rank*s.Batch
	out := make([]int, s.Batch)
	copy(out, perm[base:base+s.Batch])
	return out
}

// GlobalOrder returns the sequence number of (step, rank) in the time-sliced
// consumption order: all ranks of step 0, then all ranks of step 1, … . The
// queuing buffer and data-worker rotation follow this order.
func (s *ElasticSampler) GlobalOrder(step, rank int) int { return step*s.World + rank }
