package data

import (
	"sync"
	"testing"
)

func TestAsyncLoaderBitwiseEqualsSync(t *testing.T) {
	ref := newLoader(4, 4, 2)
	al := NewAsyncLoader(newLoader(4, 4, 2), 3, 4)
	defer al.Close()
	steps := ref.Sampler.StepsPerEpoch()
	for step := 0; step < steps; step++ {
		for r := 0; r < 4; r++ {
			want, wantL := ref.Batch(step, r)
			got, gotL := al.Batch(step, r)
			if !got.Equal(want) {
				t.Fatalf("async batch (%d,%d) differs from sync", step, r)
			}
			for i := range wantL {
				if gotL[i] != wantL[i] {
					t.Fatal("labels differ")
				}
			}
		}
	}
}

// TestAsyncLoaderConcurrentConsumers drains all ESTs from separate
// goroutines (as physical training workers would) while the shared pool
// races — exercised under -race by the normal test run.
func TestAsyncLoaderConcurrentConsumers(t *testing.T) {
	const world = 4
	ref := newLoader(world, 4, 2)
	al := NewAsyncLoader(newLoader(world, 4, 2), 2, 3)
	defer al.Close()
	steps := al.l.Sampler.StepsPerEpoch()

	hashes := make([][]uint64, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				x, _ := al.Batch(step, r)
				hashes[r] = append(hashes[r], x.Hash64())
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < world; r++ {
		for step := 0; step < steps; step++ {
			want, _ := ref.Batch(step, r)
			if hashes[r][step] != want.Hash64() {
				t.Fatalf("concurrent async batch (%d,%d) differs", step, r)
			}
		}
	}
}

// TestAsyncLoaderCheckpointMidFlight: snapshotting the underlying loader
// while prefetched-but-unconsumed batches sit in the queuing buffer must
// restore to bitwise-identical future batches.
func TestAsyncLoaderCheckpointMidFlight(t *testing.T) {
	ref := newLoader(2, 4, 2)
	base := newLoader(2, 4, 2)
	al := NewAsyncLoader(base, 2, 4)
	// consume a few steps; the pool is prefetching ahead the whole time
	for step := 0; step < 3; step++ {
		for r := 0; r < 2; r++ {
			ref.Batch(step, r)
			al.Batch(step, r)
		}
	}
	al.Close() // quiesce, pending batches remain recorded in the buffer
	st := base.State()

	restored := newLoader(2, 4, 2)
	restored.Restore(st)
	for step := 3; step < 6; step++ {
		for r := 0; r < 2; r++ {
			want, _ := ref.Batch(step, r)
			got, _ := restored.Batch(step, r)
			if !got.Equal(want) {
				t.Fatalf("restored-from-async batch (%d,%d) differs", step, r)
			}
		}
	}
}

func TestAsyncLoaderOutOfOrderPanics(t *testing.T) {
	al := NewAsyncLoader(newLoader(2, 4, 2), 1, 2)
	defer al.Close()
	al.Batch(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order consumption")
		}
	}()
	al.Batch(2, 0)
}

func TestAsyncLoaderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAsyncLoader(newLoader(2, 4, 2), 0, 2)
}
