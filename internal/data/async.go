package data

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// AsyncLoader executes the Figure 7 data-worker pool for real: a fixed set
// of physical worker goroutines (shared across all ESTs) race to pre-process
// upcoming mini-batches into the queuing buffer, ahead of training.
//
// Concurrency never touches the numerics: each EST's virtual worker streams
// are serialized by a per-rank lock, batches enter the queuing buffer with
// their pre-materialization states recorded (so Loader.State/Restore remain
// bitwise-exact around in-flight prefetch), and the physical pool size only
// decides when batches are produced, never what they contain. Tests assert
// bitwise equality against fully synchronous loading under the race
// detector.
type AsyncLoader struct {
	l     *Loader
	depth int

	rankMu []sync.Mutex // serializes each EST's virtual streams
	bufMu  sync.Mutex   // guards l.pending + produced cursors + conds
	cond   *sync.Cond   // signals consumers when a batch lands
	// produced[r] is the next step the pool will materialize for EST r.
	produced []int

	tasks chan int // rank tokens: "EST r may have prefetchable work"
	wg    sync.WaitGroup
	quit  chan struct{}
}

// NewAsyncLoader starts `physicalWorkers` shared data workers prefetching up
// to `depth` steps ahead per EST. Close must be called before snapshotting
// or restoring the underlying Loader.
func NewAsyncLoader(l *Loader, physicalWorkers, depth int) *AsyncLoader {
	if physicalWorkers <= 0 || depth <= 0 {
		panic("data: AsyncLoader needs positive workers and depth")
	}
	a := &AsyncLoader{
		l:        l,
		depth:    depth,
		rankMu:   make([]sync.Mutex, l.Sampler.World),
		produced: make([]int, l.Sampler.World),
		tasks:    make(chan int, l.Sampler.World*(depth+1)),
		quit:     make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.bufMu)
	copy(a.produced, l.nextStep)
	// the epoch permutation is lazily cached inside the sampler; prime it
	// before concurrency starts
	l.Sampler.Prime(l.epoch)

	for w := 0; w < physicalWorkers; w++ {
		a.wg.Add(1)
		go a.worker()
	}
	for r := 0; r < l.Sampler.World; r++ {
		a.kick(r)
	}
	return a
}

// kick enqueues a prefetch token for EST r (non-blocking; the channel is
// sized to hold every useful token).
func (a *AsyncLoader) kick(r int) {
	select {
	case a.tasks <- r:
	case <-a.quit:
	default:
	}
}

// worker is one shared physical data worker: it takes turns (in queue order)
// picking the next mini-batch of whichever EST has prefetch headroom.
func (a *AsyncLoader) worker() {
	defer a.wg.Done()
	for {
		select {
		case <-a.quit:
			return
		case r := <-a.tasks:
			a.prefetchOne(r)
		}
	}
}

// prefetchOne materializes EST r's next unproduced step if it is within the
// prefetch horizon.
func (a *AsyncLoader) prefetchOne(r int) {
	a.rankMu[r].Lock()
	defer a.rankMu[r].Unlock()

	a.bufMu.Lock()
	step := a.produced[r]
	if step >= a.l.Sampler.StepsPerEpoch() || step-a.l.nextStep[r] >= a.depth {
		a.bufMu.Unlock()
		return
	}
	a.produced[r] = step + 1
	a.bufMu.Unlock()

	// materialize outside bufMu: the expensive pre-processing runs truly in
	// parallel across ESTs; rankMu keeps this EST's streams sequential
	p := a.l.materialize(step, r)

	a.bufMu.Lock()
	a.l.pending[a.l.Sampler.GlobalOrder(step, r)] = p
	a.cond.Broadcast()
	a.bufMu.Unlock()

	a.kick(r) // more headroom may remain
}

// Batch returns EST r's mini-batch for `step`, waiting for the pool if it is
// not prefetched yet. Consumption is in-order per EST, as in Loader; Batch
// must not be called after Close.
func (a *AsyncLoader) Batch(step, rank int) (*tensor.Tensor, []int) {
	a.bufMu.Lock()
	if step != a.l.nextStep[rank] {
		a.bufMu.Unlock()
		panic(fmt.Sprintf("data: async EST %d consuming step %d, expected %d", rank, step, a.l.nextStep[rank]))
	}
	o := a.l.Sampler.GlobalOrder(step, rank)
	for {
		if p, ok := a.l.pending[o]; ok {
			delete(a.l.pending, o)
			a.l.nextStep[rank]++
			a.bufMu.Unlock()
			a.kick(rank)
			return p.x, p.labels
		}
		a.cond.Wait()
	}
}

// Close stops the pool and waits for in-flight pre-processing; after Close
// the underlying Loader can be snapshotted (pending batches roll back to
// their recorded states) or used synchronously.
func (a *AsyncLoader) Close() {
	close(a.quit)
	a.cond.Broadcast()
	a.wg.Wait()
}
