package data

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Loader is EasyScale's data loader with shared data workers (Figure 7).
//
// Numerically, augmentation randomness belongs to *virtual* data workers: EST
// rank r owns K = WorkersPerEST round-robin RNG streams (R r-j in the paper's
// notation), reseeded per epoch, and the j-th stream serves the steps with
// step % K == j. Because the virtual streams are tied to the logical training
// topology — never to the physical processes that happen to execute the
// pre-processing — any number of shared physical workers produces bitwise
// identical batches, which is what makes worker sharing safe.
//
// Operationally, batches may be prefetched ahead of training; the queuing
// buffer records each pending batch's pre-materialization RNG state so an
// on-demand checkpoint can capture exactly the not-yet-consumed work. State()
// returns, per virtual worker, the state as of the first pending batch (or
// the live state when nothing is pending): restoring it and re-materializing
// reproduces the same batches bitwise.
type Loader struct {
	DS            Dataset
	Sampler       *ElasticSampler
	WorkersPerEST int

	Seed  uint64
	epoch int

	// virtual worker streams: [world][K]
	streams [][]*rng.Stream
	// queuing buffer: prefetched, unconsumed batches keyed by global order
	pending map[int]*prepared
	// per-EST next step to consume (ESTs consume their own steps in order)
	nextStep []int
}

type prepared struct {
	x        *tensor.Tensor
	labels   []int
	preState rng.State // virtual worker state before materialization
}

// NewLoader constructs a loader. workersPerEST is the user's data-worker
// count per logical training worker (K).
func NewLoader(ds Dataset, sampler *ElasticSampler, workersPerEST int, seed uint64) *Loader {
	if workersPerEST <= 0 {
		panic("data: WorkersPerEST must be positive")
	}
	l := &Loader{DS: ds, Sampler: sampler, WorkersPerEST: workersPerEST, Seed: seed, pending: map[int]*prepared{}}
	l.SetEpoch(0)
	return l
}

// SetEpoch reseeds all virtual worker streams for the epoch and resets the
// consumption cursors, matching per-epoch DataLoader worker reseeding.
func (l *Loader) SetEpoch(epoch int) {
	l.epoch = epoch
	w := l.Sampler.World
	l.streams = make([][]*rng.Stream, w)
	for r := 0; r < w; r++ {
		l.streams[r] = make([]*rng.Stream, l.WorkersPerEST)
		for j := 0; j < l.WorkersPerEST; j++ {
			l.streams[r][j] = rng.NewNamed(l.Seed, fmt.Sprintf("dw-e%d-r%d-j%d", epoch, r, j))
		}
	}
	l.pending = map[int]*prepared{}
	l.nextStep = make([]int, w)
}

// Epoch returns the current epoch.
func (l *Loader) Epoch() int { return l.epoch }

func (l *Loader) worker(step int) int { return step % l.WorkersPerEST }

// materialize produces the batch for (step, rank), advancing the owning
// virtual worker stream.
func (l *Loader) materialize(step, rank int) *prepared {
	s := l.streams[rank][l.worker(step)]
	pre := s.State()
	idx := l.Sampler.Indices(l.epoch, step, rank)
	x, labels := MaterializeBatch(l.DS, idx, s)
	return &prepared{x: x, labels: labels, preState: pre}
}

// Prefetch materializes batches for EST `rank` up to `ahead` steps beyond the
// consumption cursor, filling the queuing buffer — the asynchronous progress
// of data workers the paper describes.
func (l *Loader) Prefetch(rank, ahead int) {
	limit := l.nextStep[rank] + ahead
	if max := l.Sampler.StepsPerEpoch(); limit > max {
		limit = max
	}
	for step := l.nextStep[rank]; step < limit; step++ {
		o := l.Sampler.GlobalOrder(step, rank)
		if _, ok := l.pending[o]; !ok {
			l.pending[o] = l.materialize(step, rank)
		}
	}
}

// Batch returns the mini-batch of EST `rank` at `step`. ESTs consume their
// steps strictly in order.
func (l *Loader) Batch(step, rank int) (*tensor.Tensor, []int) {
	if step != l.nextStep[rank] {
		panic(fmt.Sprintf("data: EST %d consuming step %d, expected %d (in-order consumption)", rank, step, l.nextStep[rank]))
	}
	o := l.Sampler.GlobalOrder(step, rank)
	p, ok := l.pending[o]
	if !ok {
		p = l.materialize(step, rank)
	} else {
		delete(l.pending, o)
	}
	l.nextStep[rank]++
	return p.x, p.labels
}

// AdvanceTo materializes-and-discards batches of `rank` until its cursor
// reaches `step`. Used by distributed workers to bring ESTs they do not host
// to the canonical position before checkpointing: materialization advances
// the virtual worker streams exactly as the hosting worker's did.
func (l *Loader) AdvanceTo(rank, step int) {
	for l.nextStep[rank] < step {
		l.Batch(l.nextStep[rank], rank)
	}
}

// State is the checkpointable loader state: the paper's "extra states" —
// epoch, per-EST consumption cursor, and the virtual worker RNG states rolled
// back to the first pending (prefetched, unconsumed) batch.
type State struct {
	Epoch    int
	NextStep []int
	// Streams[r][j] is the RNG state of virtual worker j of EST r.
	Streams [][]rng.State
}

// State snapshots the loader, honoring the queuing buffer: a pending batch's
// pre-materialization state supersedes the live stream state so that restore
// re-produces the pending batches bitwise.
func (l *Loader) State() State {
	st := State{Epoch: l.epoch, NextStep: append([]int(nil), l.nextStep...)}
	st.Streams = make([][]rng.State, len(l.streams))
	for r := range l.streams {
		st.Streams[r] = make([]rng.State, l.WorkersPerEST)
		for j := range l.streams[r] {
			st.Streams[r][j] = l.streams[r][j].State()
		}
		// Prefetch fills contiguously from the cursor, so pending steps form
		// a run [nextStep, nextStep+m). The first pending step owned by each
		// virtual worker carries the state to roll back to.
		rolled := make([]bool, l.WorkersPerEST)
		for step := l.nextStep[r]; ; step++ {
			p, ok := l.pending[l.Sampler.GlobalOrder(step, r)]
			if !ok {
				break
			}
			if j := l.worker(step); !rolled[j] {
				st.Streams[r][j] = p.preState
				rolled[j] = true
			}
		}
	}
	return st
}

// Restore rebuilds loader position from a snapshot; pending prefetches are
// discarded (they will be re-materialized from the restored states).
func (l *Loader) Restore(st State) {
	if len(st.NextStep) != l.Sampler.World || len(st.Streams) != l.Sampler.World {
		panic("data: Restore with mismatched world size")
	}
	l.epoch = st.Epoch
	l.nextStep = append([]int(nil), st.NextStep...)
	l.streams = make([][]*rng.Stream, len(st.Streams))
	for r := range st.Streams {
		if len(st.Streams[r]) != l.WorkersPerEST {
			panic("data: Restore with mismatched WorkersPerEST")
		}
		l.streams[r] = make([]*rng.Stream, l.WorkersPerEST)
		for j := range st.Streams[r] {
			l.streams[r][j] = rng.Restore(st.Streams[r][j])
		}
	}
	l.pending = map[int]*prepared{}
}

// Worker-pool launch cost model for the data-worker sharing experiment
// (§5.1.2): process fork/import overhead per data worker plus a fixed runtime
// initialization.
const (
	workerLaunchBase = 150 * time.Millisecond
	workerLaunchEach = 40 * time.Millisecond
)

// FirstBatchLatency models the time before the first mini-batch is available
// when `numPhysicalWorkers` data-worker processes must be launched. Sharing
// workers across ESTs shrinks this count (e.g. 32 → 4), which is the −67.1%
// first-mini-batch improvement the paper reports.
func FirstBatchLatency(numPhysicalWorkers int) time.Duration {
	if numPhysicalWorkers < 0 {
		panic("data: negative worker count")
	}
	return workerLaunchBase + time.Duration(numPhysicalWorkers)*workerLaunchEach
}
