// Package metrics provides the summary statistics the experiment harness
// reports: distribution summaries (mean/percentiles) for JCT analyses,
// accuracy-spread measures for the consistency figures, and loss-curve
// comparison helpers for Figure 9-style plots.
package metrics

import (
	"math"
	"sort"
)

// Summary is a distribution summary.
type Summary struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
	// P999 is the 99.9th percentile — the serving tail-latency figure of
	// merit, where dynamic-batching head-of-line blocking shows up first.
	P999 float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	s.P999 = Percentile(sorted, 0.999)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	n := float64(len(sorted))
	s.Mean = sum / n
	// two-pass variance: the textbook sumsq/n − mean² form cancels
	// catastrophically for large-mean series (it can even go negative,
	// silently zeroing Std); summing squared deviations from the mean is
	// stable regardless of offset
	var sumd2 float64
	for _, v := range sorted {
		d := v - s.Mean
		sumd2 += d * d
	}
	if variance := sumd2 / n; variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// slice, with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram buckets xs by the ascending upper bounds: counts[i] holds the
// number of values ≤ bounds[i] not already counted by an earlier bucket, and
// counts[len(bounds)] is the overflow bucket. Latency reports use it to show
// distribution shape beyond the fixed percentiles of Summary.
func Histogram(xs, bounds []float64) []int {
	counts := make([]int, len(bounds)+1)
	for _, v := range xs {
		i := sort.SearchFloat64s(bounds, v)
		counts[i]++
	}
	return counts
}

// Spread returns max(xs) − min(xs), the accuracy-inconsistency measure of
// Figures 2–3.
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// MaxAbsDiff returns the largest |a[i]−b[i]| over the common prefix — the
// per-stage divergence measure of Figure 9.
func MaxAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	m := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// FirstDivergence returns the first index where |a[i]−b[i]| exceeds tol, or
// −1 when the curves agree throughout the common prefix.
func FirstDivergence(a, b []float64, tol float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if math.Abs(a[i]-b[i]) > tol {
			return i
		}
	}
	return -1
}

// Crossings counts sign changes of a−b — the curve-entanglement measure of
// Figure 4.
func Crossings(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 1; i < n; i++ {
		if (a[i-1]-b[i-1])*(a[i]-b[i]) < 0 {
			c++
		}
	}
	return c
}

// GeoMeanRatio returns the geometric mean of a[i]/b[i] — the normalized-time
// aggregate of Figure 12.
func GeoMeanRatio(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		if a[i] <= 0 || b[i] <= 0 {
			return 0
		}
		sum += math.Log(a[i] / b[i])
	}
	return math.Exp(sum / float64(n))
}
