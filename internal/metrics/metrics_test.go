package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

// TestSummarizeLargeOffsetStd: regression for catastrophic cancellation.
// With the old sumsq/n − mean² formula, a small-variance series riding a
// large mean (e.g. JCTs measured in nanoseconds since epoch) lost all
// significant digits of the variance — which could even go negative and
// silently zero Std. The two-pass computation is offset-invariant.
func TestSummarizeLargeOffsetStd(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5}
	want := math.Sqrt(2) // population std of 1..5
	for _, offset := range []float64{0, 1e6, 1e9, 1e12} {
		xs := make([]float64, len(base))
		for i, v := range base {
			xs[i] = v + offset
		}
		s := Summarize(xs)
		if math.Abs(s.Std-want) > 1e-3 {
			t.Fatalf("offset %g: Std = %v, want %v (catastrophic cancellation)", offset, s.Std, want)
		}
	}
}

func TestSummarizeConstantSeriesZeroStd(t *testing.T) {
	if s := Summarize([]float64{7.5e11, 7.5e11, 7.5e11}); s.Std != 0 {
		t.Fatalf("constant series Std = %v, want exactly 0", s.Std)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := Percentile(sorted, 0.5); p != 5 {
		t.Fatalf("p50 of {0,10} = %v", p)
	}
	if Percentile(sorted, 0) != 0 || Percentile(sorted, 1) != 10 {
		t.Fatal("extremes")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
	// P999 interpolates within the last gap: on 0..1000 the 99.9th
	// percentile sits exactly at 999
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i)
	}
	if p := Percentile(xs, 0.999); math.Abs(p-999) > 1e-9 {
		t.Fatalf("p999 of 0..1000 = %v", p)
	}
	s := Summarize(xs)
	if s.P999 < s.P99 || s.P999 > s.Max {
		t.Fatalf("P999 %v outside [P99 %v, Max %v]", s.P999, s.P99, s.Max)
	}
	// on a two-point series P999 must still interpolate, not snap to Max
	if s2 := Summarize([]float64{0, 10}); s2.P999 >= 10 || s2.P999 <= s2.P50 {
		t.Fatalf("two-point P999 = %v", s2.P999)
	}
}

func TestHistogram(t *testing.T) {
	bounds := []float64{1, 2, 4}
	got := Histogram([]float64{0.5, 1, 1.5, 3, 100}, bounds)
	want := []int{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤2: {1.5}; ≤4: {3}; overflow: {100}
	if len(got) != len(want) {
		t.Fatalf("histogram has %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("histogram %v, want %v", got, want)
		}
	}
	if h := Histogram(nil, bounds); h[0]+h[1]+h[2]+h[3] != 0 {
		t.Fatal("empty input must produce empty buckets")
	}
	// no bounds: everything lands in the single overflow bucket
	if h := Histogram([]float64{1, 2}, nil); len(h) != 1 || h[0] != 2 {
		t.Fatalf("boundless histogram %v", h)
	}
	// total count is preserved regardless of bounds
	total := 0
	for _, c := range Histogram([]float64{-5, 0, 1, 2, 3, 4, 5}, bounds) {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram lost values: total %d", total)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sort.Float64s(raw)
		q1 := math.Mod(math.Abs(p1), 1)
		q2 := math.Mod(math.Abs(p2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Percentile(raw, q1) <= Percentile(raw, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpread(t *testing.T) {
	if Spread([]float64{0.3, 0.9, 0.5}) != 0.6000000000000001 && Spread([]float64{0.3, 0.9, 0.5}) != 0.6 {
		t.Fatalf("spread = %v", Spread([]float64{0.3, 0.9, 0.5}))
	}
	if Spread(nil) != 0 {
		t.Fatal("empty spread")
	}
}

func TestMaxAbsDiffAndFirstDivergence(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3.5, 10}
	if d := MaxAbsDiff(a, b); d != 6 {
		t.Fatalf("max diff %v", d)
	}
	if i := FirstDivergence(a, b, 0.1); i != 2 {
		t.Fatalf("first divergence %d", i)
	}
	if i := FirstDivergence(a, a, 0); i != -1 {
		t.Fatalf("identical curves diverged at %d", i)
	}
}

func TestCrossings(t *testing.T) {
	a := []float64{0, 2, 0, 2}
	b := []float64{1, 1, 1, 1}
	if c := Crossings(a, b); c != 3 {
		t.Fatalf("crossings %d", c)
	}
	if Crossings(a, a) != 0 {
		t.Fatal("self crossings")
	}
}

func TestGeoMeanRatio(t *testing.T) {
	a := []float64{2, 8}
	b := []float64{1, 2}
	if g := GeoMeanRatio(a, b); math.Abs(g-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("geomean %v", g)
	}
	if GeoMeanRatio([]float64{0}, []float64{1}) != 0 {
		t.Fatal("non-positive inputs should yield 0")
	}
	if GeoMeanRatio(nil, nil) != 0 {
		t.Fatal("empty geomean")
	}
}
