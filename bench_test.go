package easyscale

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding experiment end to end; the figures'
// rows can be printed with `go run ./cmd/experiments` (which also records
// paper-vs-measured in EXPERIMENTS.md).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

func BenchmarkFig01ServingLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig01ServingLoad(3000, 42)
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig02AccuracyCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig02AccuracyCurves("vgg19", 1)
	}
}

func BenchmarkFig03PerClassVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig03PerClassVariance("vgg19", 1)
	}
}

func BenchmarkFig04GammaTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig04GammaTrend("vgg19", 1)
	}
}

func BenchmarkFig09LossDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig09LossDiff("resnet50", 6)
	}
}

func BenchmarkFig10PackingVsEST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig10PackingVsEST("resnet50", 32, 16*1024)
		Fig10PackingVsEST("shufflenetv2", 512, 32*1024)
	}
}

func BenchmarkFig11CtxSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig11CtxSwitch(3)
	}
}

func BenchmarkFig12DeterminismOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig12DeterminismOverhead(2)
	}
}

func BenchmarkFig13GradCopySync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig13GradCopySync(2)
	}
}

func BenchmarkFig14TraceJCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig14TraceJCT(40, 30, []uint64{11})
	}
}

func BenchmarkFig15AllocTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig15AllocTimeline(40, 30, 11)
	}
}

func BenchmarkFig16Production(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig16Production(3000, 42)
	}
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table1Workloads()
	}
}

func BenchmarkMotivationRevocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MotivationRevocations(2000, 13)
	}
}

func BenchmarkDataWorkerSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DataWorkerSharing(8, 4)
	}
}

// BenchmarkGlobalStep measures the simulated engine's host-side cost of one
// global step (4 ESTs on one simulated V100).
func BenchmarkGlobalStep(b *testing.B) {
	cfg := core.DefaultConfig(4)
	cfg.BatchPerEST = 4
	j, err := core.NewJob(cfg, "resnet50")
	if err != nil {
		b.Fatal(err)
	}
	if err := j.Attach(core.EvenPlacement(4, device.V100)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.RunStep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures on-demand checkpoint serialization.
func BenchmarkCheckpoint(b *testing.B) {
	cfg := core.DefaultConfig(4)
	cfg.BatchPerEST = 4
	j, err := core.NewJob(cfg, "bert")
	if err != nil {
		b.Fatal(err)
	}
	if err := j.Attach(core.EvenPlacement(4, device.V100)); err != nil {
		b.Fatal(err)
	}
	if err := j.RunSteps(2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(j.Checkpoint()) == 0 {
			b.Fatal("empty checkpoint")
		}
	}
}
