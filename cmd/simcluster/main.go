// Command simcluster runs the discrete-event cluster simulator: the 64-GPU
// trace experiment comparing YARN-CS against EasyScale (§5.2), or the
// production co-location scenario (§5.3).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	mode := flag.String("mode", "compare", "yarn, homo, heter, compare, or colocate")
	jobs := flag.Int("jobs", 60, "number of trace jobs")
	gap := flag.Float64("gap", 30, "mean inter-arrival seconds")
	seed := flag.Uint64("seed", 11, "trace seed")
	v100 := flag.Int("v100", 32, "V100 count")
	p100 := flag.Int("p100", 16, "P100 count")
	t4 := flag.Int("t4", 16, "T4 count")
	totalGPUs := flag.Int("total", 3000, "fleet size for -mode colocate")
	flag.Parse()

	if *mode == "colocate" {
		day1, day2 := cluster.TwoDayComparison(*totalGPUs, *seed)
		fmt.Printf("production co-location on %d GPUs:\n", *totalGPUs)
		fmt.Printf("  day 1 (serving only):  alloc %.1f%%  util %.1f%%\n", day1.AvgAllocRatio*100, day1.AvgSMUtil*100)
		fmt.Printf("  day 2 (with EasyScale): alloc %.1f%%  util %.1f%%  elastic GPUs avg %.0f  preemptions %d  max refill %dm\n",
			day2.AvgAllocRatio*100, day2.AvgSMUtil*100, day2.AvgElasticGPUs, day2.Preemptions, day2.MaxRefillMin)
		return
	}

	inv := sched.Resources{device.V100: *v100, device.P100: *p100, device.T4: *t4}
	tr := workload.Generate(*jobs, *gap, *seed)
	run := func(m cluster.Mode) cluster.Result {
		return cluster.Simulate(cluster.Config{Mode: m, Inventory: inv}, tr)
	}
	print := func(r cluster.Result) {
		fmt.Printf("%-16s avgJCT %9.0fs  queue %9.0fs  makespan %9.0fs  finished %d/%d\n",
			r.Mode, r.AvgJCT, r.AvgQueue, r.Makespan, r.Finished, *jobs)
	}
	switch *mode {
	case "yarn":
		print(run(cluster.YARNCS))
	case "homo":
		print(run(cluster.EasyScaleHomo))
	case "heter":
		print(run(cluster.EasyScaleHeter))
	case "compare":
		y := run(cluster.YARNCS)
		h := run(cluster.EasyScaleHomo)
		x := run(cluster.EasyScaleHeter)
		print(y)
		print(h)
		print(x)
		fmt.Printf("gains vs YARN-CS: homo %.1fx JCT / %.1fx makespan; heter %.1fx / %.1fx\n",
			y.AvgJCT/h.AvgJCT, y.Makespan/h.Makespan, y.AvgJCT/x.AvgJCT, y.Makespan/x.Makespan)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
