// Command simcluster runs the discrete-event cluster simulator: the 64-GPU
// trace experiment comparing YARN-CS against EasyScale (§5.2), or the
// production co-location scenario (§5.3).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	mode := flag.String("mode", "compare", "yarn, homo, heter, compare, colocate, or tenants")
	jobs := flag.Int("jobs", 60, "number of trace jobs")
	gap := flag.Float64("gap", 30, "mean inter-arrival seconds")
	seed := flag.Uint64("seed", 11, "trace seed")
	v100 := flag.Int("v100", 32, "V100 count")
	p100 := flag.Int("p100", 16, "P100 count")
	t4 := flag.Int("t4", 16, "T4 count")
	totalGPUs := flag.Int("total", 3000, "fleet size for -mode colocate")
	teams := flag.Int("teams", 4, "team count for -mode tenants")
	strategy := flag.String("strategy", "bestfit", "bin-packing for -mode tenants: bestfit, firstfit, worstfit")
	nodeGPUs := flag.Int("node-gpus", 8, "GPUs per node for -mode tenants")
	ticks := flag.Int("ticks", 500, "10s simulation ticks for -mode tenants")
	showLog := flag.Int("show-log", 12, "decision-log lines to print for -mode tenants")
	flag.Parse()

	if *mode == "colocate" {
		day1, day2 := cluster.TwoDayComparison(*totalGPUs, *seed)
		fmt.Printf("production co-location on %d GPUs:\n", *totalGPUs)
		fmt.Printf("  day 1 (serving only):  alloc %.1f%%  util %.1f%%\n", day1.AvgAllocRatio*100, day1.AvgSMUtil*100)
		fmt.Printf("  day 2 (with EasyScale): alloc %.1f%%  util %.1f%%  elastic GPUs avg %.0f  preemptions %d  max refill %dm\n",
			day2.AvgAllocRatio*100, day2.AvgSMUtil*100, day2.AvgElasticGPUs, day2.Preemptions, day2.MaxRefillMin)
		return
	}

	inv := sched.Resources{device.V100: *v100, device.P100: *p100, device.T4: *t4}

	if *mode == "tenants" {
		runTenants(inv, *teams, *strategy, *nodeGPUs, *jobs, *gap, *seed, *ticks, *showLog)
		return
	}

	tr := workload.Generate(*jobs, *gap, *seed)
	run := func(m cluster.Mode) cluster.Result {
		return cluster.Simulate(cluster.Config{Mode: m, Inventory: inv}, tr)
	}
	print := func(r cluster.Result) {
		fmt.Printf("%-16s avgJCT %9.0fs  queue %9.0fs  makespan %9.0fs  finished %d/%d\n",
			r.Mode, r.AvgJCT, r.AvgQueue, r.Makespan, r.Finished, *jobs)
	}
	switch *mode {
	case "yarn":
		print(run(cluster.YARNCS))
	case "homo":
		print(run(cluster.EasyScaleHomo))
	case "heter":
		print(run(cluster.EasyScaleHeter))
	case "compare":
		y := run(cluster.YARNCS)
		h := run(cluster.EasyScaleHomo)
		x := run(cluster.EasyScaleHeter)
		print(y)
		print(h)
		print(x)
		fmt.Printf("gains vs YARN-CS: homo %.1fx JCT / %.1fx makespan; heter %.1fx / %.1fx\n",
			y.AvgJCT/h.AvgJCT, y.Makespan/h.Makespan, y.AvgJCT/x.AvgJCT, y.Makespan/x.Makespan)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// runTenants splits the inventory into equal per-team budget envelopes,
// replays a multi-team trace through the control plane twice — strict
// envelopes vs cross-team borrowing — and prints both reports.
func runTenants(inv sched.Resources, nTeams int, strategyName string, nodeGPUs, jobs int, gap float64, seed uint64, ticks, showLog int) {
	strat, ok := controlplane.StrategyByName(strategyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want bestfit, firstfit, or worstfit)\n", strategyName)
		os.Exit(2)
	}
	if nTeams < 1 {
		nTeams = 1
	}
	names := make([]string, nTeams)
	cfgs := make([]controlplane.TeamConfig, nTeams)
	for i := range names {
		names[i] = fmt.Sprintf("team-%d", i+1)
		quota := sched.Resources{}
		for _, t := range device.AllTypes() {
			n := inv[t] / nTeams
			if i < inv[t]%nTeams {
				n++
			}
			if n > 0 {
				quota[t] = n
			}
		}
		cfgs[i] = controlplane.TeamConfig{Name: names[i], Quota: quota}
	}
	trace := workload.GenerateTenants(jobs, names, gap, seed)
	run := func(borrow bool) controlplane.Report {
		p := controlplane.New(controlplane.Config{
			Inventory: inv, Teams: cfgs, AllowBorrowing: borrow,
			Strategy: strat, NodeGPUs: nodeGPUs,
		})
		next := 0
		for tick := 0; tick < ticks; tick++ {
			now := float64(tick) * 10
			for next < len(trace) && trace[next].ArrivalSec <= now {
				p.Submit(trace[next])
				next++
			}
			p.Tick(now)
		}
		return p.Report()
	}
	strict := run(false)
	borrow := run(true)

	fmt.Printf("multi-tenant control plane: %d GPUs, %d teams, %d jobs, strategy %s\n",
		inv.Total(), nTeams, jobs, strict.Strategy)
	fmt.Printf("%-18s %12s %12s\n", "", "strict", "borrowing")
	fmt.Printf("%-18s %11.1f%% %11.1f%%\n", "avg utilization", strict.Utilization*100, borrow.Utilization*100)
	fmt.Printf("%-18s %12d %12d\n", "jobs admitted", strict.Admitted, borrow.Admitted)
	fmt.Printf("%-18s %12d %12d\n", "jobs finished", strict.Finished, borrow.Finished)
	fmt.Printf("%-18s %12d %12d\n", "leases minted", strict.LeasesMinted, borrow.LeasesMinted)
	fmt.Printf("%-18s %12d %12d\n", "open reservations", strict.ReservationsOpen, borrow.ReservationsOpen)
	fmt.Printf("%-18s %12d %12d\n", "borrows", strict.Borrows, borrow.Borrows)
	fmt.Printf("%-18s %12d %12d\n", "reclaims", strict.Reclaims, borrow.Reclaims)

	fmt.Printf("\nper-team envelopes (borrowing run, t=%.0fs):\n", borrow.NowSec)
	for _, tr := range borrow.Teams {
		fmt.Printf("  %-8s quota %-24s inUse %-24s lent %-16s borrowed %s\n",
			tr.Name, tr.Quota.Key(), tr.InUse.Key(), tr.Lent.Key(), tr.Borrowed.Key())
	}

	fmt.Printf("\nfragmentation (borrowing run):\n")
	for _, f := range borrow.Frag {
		fmt.Printf("  %-5s nodes %3d (full %d, partial %d, empty %d)  free %d (%d stranded in partial, ratio %.2f)  consolidation moves %d\n",
			f.Type, f.Nodes, f.FullNodes, f.PartialNodes, f.EmptyNodes,
			f.FreeGPUs, f.FreeInPartial, f.FragRatio, f.ConsolidationMoves)
	}

	if showLog > 0 && len(borrow.Log) > 0 {
		n := showLog
		if n > len(borrow.Log) {
			n = len(borrow.Log)
		}
		fmt.Printf("\nlast %d decision-log entries (borrowing run):\n", n)
		for _, line := range borrow.Log[len(borrow.Log)-n:] {
			fmt.Printf("  %s\n", line)
		}
	}
}
