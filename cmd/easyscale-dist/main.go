// Command easyscale-dist runs EasyScale as genuinely separate OS processes:
// one coordinator process and one worker process per physical worker,
// exchanging gradients and checkpoints over TCP.
//
// Example (three shells, or background the first two):
//
//	easyscale-dist coordinator -addr 127.0.0.1:7070 -workers 2 -steps 20 \
//	    -model bert -ests 4 -gpus V100:1,P100:1 -out /tmp/job.ckpt -verify
//	easyscale-dist worker -coord 127.0.0.1:7070 -model bert -ests 4 -gpus V100:1,P100:1
//	easyscale-dist worker -coord 127.0.0.1:7070 -model bert -ests 4 -gpus V100:1,P100:1
//
// Every process is handed the same job definition (model, ESTs, placement) —
// the "training script plus launcher args" convention — and learns its rank,
// the leader address, the step budget, and the restore checkpoint from the
// coordinator's membership frame. The coordinator optionally verifies the
// resulting checkpoint bitwise against an in-process fixed-DoP reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "coordinator":
		runCoordinator(os.Args[2:])
	case "worker":
		runWorker(os.Args[2:])
	case "elastic":
		runElastic(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: easyscale-dist {coordinator|worker|elastic} [flags]")
	os.Exit(2)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// jobFlags registers the shared job-definition flags.
func jobFlags(fs *flag.FlagSet) (model *string, ests, batch *int, gpus *string, seed *uint64, epoch *uint64, timeout *time.Duration) {
	model = fs.String("model", "bert", "workload name")
	ests = fs.Int("ests", 4, "number of logical workers (ESTs)")
	batch = fs.Int("batch", 4, "per-EST mini-batch size")
	gpus = fs.String("gpus", "V100:2", "placement, e.g. V100:1,P100:1 (one worker process per GPU entry)")
	seed = fs.Uint64("seed", 42, "job master seed")
	epoch = fs.Uint64("epoch", 1, "rendezvous epoch; the coordinator rejects workers from any other epoch")
	timeout = fs.Duration("timeout", 0, "network operation deadline (0: EASYSCALE_DIST_TIMEOUT or the built-in default)")
	return
}

func buildSpec(model string, ests, batch int, gpus string, seed uint64, epoch uint64, timeout time.Duration, coord string) (dist.WorkerSpec, error) {
	p, err := parsePlacement(gpus, ests)
	if err != nil {
		return dist.WorkerSpec{}, err
	}
	cfg := core.DefaultConfig(ests)
	cfg.BatchPerEST = batch
	cfg.Seed = seed
	cfg.DistTimeout = timeout
	return dist.WorkerSpec{Cfg: cfg, Workload: model, Placement: p, CoordAddr: coord, Epoch: epoch}, nil
}

func parsePlacement(spec string, ests int) (core.Placement, error) {
	var gpus []device.Type
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		count := 1
		if len(kv) == 2 {
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return core.Placement{}, fmt.Errorf("bad count in %q", part)
			}
			count = n
		}
		var t device.Type
		switch strings.ToUpper(kv[0]) {
		case "V100":
			t = device.V100
		case "P100":
			t = device.P100
		case "T4":
			t = device.T4
		default:
			return core.Placement{}, fmt.Errorf("unknown GPU type %q", kv[0])
		}
		for i := 0; i < count; i++ {
			gpus = append(gpus, t)
		}
	}
	return core.EvenPlacement(ests, gpus...), nil
}

func runCoordinator(args []string) {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "rendezvous address")
	workers := fs.Int("workers", 2, "worker processes to admit")
	steps := fs.Int("steps", 20, "global steps this generation")
	out := fs.String("out", "", "file to write the resulting on-demand checkpoint to")
	in := fs.String("in", "", "checkpoint file to restore the generation from")
	verify := fs.Bool("verify", false, "verify the result bitwise against an in-process fixed-DoP run")
	model, ests, batch, gpus, seed, epoch, timeout := jobFlags(fs)
	die(fs.Parse(args))

	var ckptIn []byte
	if *in != "" {
		data, err := os.ReadFile(*in)
		die(err)
		ckptIn = data
	}

	coord, err := dist.NewCoordinatorAddr(*addr)
	die(err)
	defer coord.Close()
	if *timeout > 0 {
		coord.SetTimeout(*timeout)
	}
	fmt.Printf("coordinator listening on %s, waiting for %d workers (epoch %d)...\n", coord.Addr(), *workers, *epoch)

	ckpt, err := coord.RunGeneration(*epoch, *workers, *steps, ckptIn)
	die(err)
	fmt.Printf("generation complete: %d steps across %d worker processes\n", *steps, *workers)

	if *out != "" {
		die(os.WriteFile(*out, ckpt, 0o644))
		fmt.Printf("on-demand checkpoint written to %s (%d bytes)\n", *out, len(ckpt))
	}

	if *verify {
		spec, err := buildSpec(*model, *ests, *batch, *gpus, *seed, *epoch, *timeout, "")
		die(err)
		got, err := core.RestoreJob(spec.Cfg, ckpt)
		die(err)
		ref, err := core.NewJob(spec.Cfg, *model)
		die(err)
		homog := make([]device.Type, *ests)
		for i := range homog {
			homog[i] = device.V100
		}
		die(ref.Attach(core.EvenPlacement(*ests, homog...)))
		die(ref.RunSteps(got.GlobalStep()))
		if core.ParamsEqual(got, ref) {
			fmt.Printf("verify: BITWISE IDENTICAL to in-process DDP on %d V100s\n", *ests)
		} else {
			fmt.Println("verify: DIVERGED")
			fmt.Print(core.Diagnose(ref, got))
			os.Exit(1)
		}
	}
}

func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coord := fs.String("coord", "127.0.0.1:7070", "coordinator rendezvous address")
	model, ests, batch, gpus, seed, epoch, timeout := jobFlags(fs)
	die(fs.Parse(args))

	spec, err := buildSpec(*model, *ests, *batch, *gpus, *seed, *epoch, *timeout, *coord)
	die(err)
	die(dist.RunWorker(spec))
	fmt.Println("worker done")
}

// parsePhases reads a ';'-separated phase list, each entry PLACEMENT@STEPS
// (the placement syntax of -gpus), e.g. "V100:2@10;V100:1,P100:1@10".
func parsePhases(spec string, ests int) ([]dist.Phase, error) {
	var phases []dist.Phase
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		at := strings.LastIndex(entry, "@")
		if at < 0 {
			return nil, fmt.Errorf("phase %q: want PLACEMENT@STEPS", entry)
		}
		steps, err := strconv.Atoi(entry[at+1:])
		if err != nil || steps <= 0 {
			return nil, fmt.Errorf("phase %q: bad step count", entry)
		}
		p, err := parsePlacement(entry[:at], ests)
		if err != nil {
			return nil, err
		}
		phases = append(phases, dist.Phase{Placement: p, Steps: steps})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("no phases in %q", spec)
	}
	return phases, nil
}

// runElastic drives a whole elastic run — coordinator plus one in-process
// networked worker per placement entry per phase — through dist.Run, the
// single-binary counterpart of the coordinator/worker subcommands.
func runElastic(args []string) {
	fs := flag.NewFlagSet("elastic", flag.ExitOnError)
	model := fs.String("model", "bert", "workload name")
	ests := fs.Int("ests", 4, "number of logical workers (ESTs)")
	batch := fs.Int("batch", 4, "per-EST mini-batch size")
	seed := fs.Uint64("seed", 42, "job master seed")
	timeout := fs.Duration("timeout", 0, "network operation deadline (0: EASYSCALE_DIST_TIMEOUT or the built-in default)")
	phasesSpec := fs.String("phases", "V100:2@10;V100:1@10", "';'-separated phases, each PLACEMENT@STEPS")
	live := fs.Bool("live", false, "migrate ESTs between phases instead of stop-restart (sharded multi-peer state handoff)")
	retries := fs.Int("retries", 0, "retries per failed phase (crash recovery)")
	out := fs.String("out", "", "file to write the final on-demand checkpoint to")
	traceOut := fs.String("trace", "", "write a Perfetto-loadable Chrome trace of the run to this file")
	die(fs.Parse(args))

	cfg := core.DefaultConfig(*ests)
	cfg.BatchPerEST = *batch
	cfg.Seed = *seed
	cfg.DistTimeout = *timeout

	phases, err := parsePhases(*phasesSpec, *ests)
	die(err)

	opts := []dist.Option{dist.WithRetryPolicy(dist.RetryPolicy{MaxRetries: *retries})}
	if *live {
		opts = append(opts, dist.WithLiveMigration())
	}
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.New()
		opts = append(opts, dist.WithTracer(tr))
	}
	ckpt, err := dist.Run(cfg, *model, phases, opts...)
	die(err)
	job, err := core.RestoreJob(cfg, ckpt)
	die(err)
	mode := "stop-restart"
	if *live {
		mode = "live migration"
	}
	fmt.Printf("elastic run complete: %d phases (%s), %d global steps, epoch %d\n", len(phases), mode, job.GlobalStep(), job.Epoch())

	if *out != "" {
		die(os.WriteFile(*out, ckpt, 0o644))
		fmt.Printf("on-demand checkpoint written to %s (%d bytes)\n", *out, len(ckpt))
	}
	if tr != nil {
		f, err := os.Create(*traceOut)
		die(err)
		die(tr.WriteChromeTrace(f))
		die(f.Close())
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
}
