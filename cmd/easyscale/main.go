// Command easyscale runs one elastic training job on the simulated GPU
// fleet, optionally scaling between placements mid-run, and verifies the
// accuracy-consistency guarantee against a fixed-DoP reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	easyscale "repro"
	"repro/internal/kernels"
)

func parsePlacement(spec string, ests int) (easyscale.Placement, error) {
	var gpus []easyscale.GPUType
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		count := 1
		if len(kv) == 2 {
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return easyscale.Placement{}, fmt.Errorf("bad count in %q", part)
			}
			count = n
		}
		var t easyscale.GPUType
		switch strings.ToUpper(kv[0]) {
		case "V100":
			t = easyscale.V100
		case "P100":
			t = easyscale.P100
		case "T4":
			t = easyscale.T4
		default:
			return easyscale.Placement{}, fmt.Errorf("unknown GPU type %q", kv[0])
		}
		for i := 0; i < count; i++ {
			gpus = append(gpus, t)
		}
	}
	return easyscale.EvenPlacement(ests, gpus...), nil
}

func main() {
	model := flag.String("model", "resnet50", "workload name (see cmd/experiments -exp table1)")
	ests := flag.Int("ests", 4, "number of logical workers (ESTs, maxP)")
	batch := flag.Int("batch", 8, "per-EST mini-batch size")
	steps := flag.Int("steps", 60, "global steps per phase")
	level := flag.String("level", "D1", "determinism level: none, D0, D1")
	d2 := flag.Bool("d2", true, "enable heterogeneous determinism (D2)")
	gpus := flag.String("gpus", "V100:4", "initial placement, e.g. V100:2,P100:1")
	scaleTo := flag.String("scale-to", "", "optional second placement to scale to mid-run")
	verify := flag.Bool("verify", true, "compare bitwise against a fixed-DoP reference run")
	saveCkpt := flag.String("save-ckpt", "", "write the final on-demand checkpoint to this file")
	loadCkpt := flag.String("load-ckpt", "", "resume from an on-demand checkpoint file")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace of the run to this file")
	traceSummary := flag.Bool("trace-summary", false, "print a per-span timing summary at the end")
	version := flag.Bool("version", false, "print build and CPU feature information, then exit")
	flag.Parse()

	if *version {
		fmt.Println("easyscale: EasyScale reproduction (elastic training with consistent accuracy)")
		fmt.Printf("cpu: features=%s kernel=%s available=%s\n",
			strings.Join(kernels.CPUFeatures(), ","),
			kernels.ActiveISA(),
			strings.Join(kernels.AvailableISAs(), ","))
		return
	}

	cfg := easyscale.DefaultConfig(*ests)
	cfg.BatchPerEST = *batch
	cfg.D2 = *d2
	switch strings.ToUpper(*level) {
	case "NONE":
		cfg.Level = easyscale.DetNone
	case "D0":
		cfg.Level = easyscale.D0
	case "D1":
		cfg.Level = easyscale.D1
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *level)
		os.Exit(2)
	}

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	p0, err := parsePlacement(*gpus, *ests)
	die(err)

	var job *easyscale.Job
	if *loadCkpt != "" {
		data, err := os.ReadFile(*loadCkpt)
		die(err)
		job, err = easyscale.RestoreJob(cfg, data)
		die(err)
		fmt.Printf("resumed from %s at global step %d\n", *loadCkpt, job.GlobalStep())
	} else {
		job, err = easyscale.NewJob(cfg, *model)
		die(err)
	}
	// tracing attaches after the job exists and survives Scale; it observes
	// the run without touching its numerics (the -verify comparison below
	// holds with or without it)
	var tr *easyscale.Tracer
	if *traceOut != "" || *traceSummary {
		tr = easyscale.NewTracer()
		easyscale.SetDefaultTracer(tr) // kernel-dispatch spans
		job.SetTracer(tr)
	}

	die(job.Attach(p0))
	fmt.Printf("training %s: %d ESTs on %v, level %v D2=%v\n", *model, *ests, p0.Devices, cfg.Level, cfg.D2)
	die(job.RunSteps(*steps))
	fmt.Printf("phase 1 done: step=%d epoch=%d losses=%v\n", job.GlobalStep(), job.Epoch(), job.LastLosses())

	if *scaleTo != "" {
		p1, err := parsePlacement(*scaleTo, *ests)
		die(err)
		fmt.Printf("scaling to %v (on-demand checkpoint + restore)\n", p1.Devices)
		die(job.Scale(p1))
		die(job.RunSteps(*steps))
		fmt.Printf("phase 2 done: step=%d losses=%v\n", job.GlobalStep(), job.LastLosses())
	}

	eval := job.Evaluate()
	fmt.Printf("validation accuracy: %.4f\n", eval.Overall)

	// export the trace before the reference run below, so the kernel spans
	// of the verification pass don't dilute the job's own timeline
	if tr != nil {
		easyscale.SetDefaultTracer(nil)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			die(err)
			die(tr.WriteChromeTrace(f))
			die(f.Close())
			fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", *traceOut)
		}
		if *traceSummary {
			fmt.Print(tr.Summary())
		}
	}

	if *saveCkpt != "" {
		die(os.WriteFile(*saveCkpt, job.Checkpoint(), 0o644))
		fmt.Printf("on-demand checkpoint written to %s\n", *saveCkpt)
	}

	if *verify && cfg.Level == easyscale.D1 {
		ref, err := easyscale.NewJob(cfg, job.Workload.Name)
		die(err)
		refGPUs := make([]easyscale.GPUType, *ests)
		for i := range refGPUs {
			refGPUs[i] = easyscale.V100
		}
		die(ref.Attach(easyscale.EvenPlacement(*ests, refGPUs...)))
		die(ref.RunSteps(job.GlobalStep()))
		if easyscale.ParamsEqual(job, ref) {
			fmt.Printf("consistency: BITWISE IDENTICAL to DDP on %d V100s after %d steps\n", *ests, job.GlobalStep())
		} else {
			fmt.Printf("consistency: DIVERGED from the fixed-DoP reference\n")
			fmt.Print(easyscale.Diagnose(ref, job))
			if cfg.D2 || p0.Homogeneous() {
				os.Exit(1)
			}
			fmt.Println("(expected: heterogeneous placement without D2)")
		}
	}
}
