// Command tracecheck validates that a file is a structurally sound Chrome
// trace-event JSON export (the format ui.perfetto.dev and chrome://tracing
// load): parseable, non-empty, every event named and phased, spans with sane
// timestamps, at least one named track. It is the schema check behind
// `make trace-smoke`.
//
//	easyscale -trace /tmp/run.json ... && tracecheck /tmp/run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := obs.CheckChromeTrace(data); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Chrome trace (%d bytes)\n", path, len(data))
}
