// Command easyscale-serve is the elastic inference side of EasyScale: it
// loads zoo models from sharded checkpoint containers and serves predict
// requests with deadline-aware dynamic batching and saturation-based
// replica autoscaling.
//
// Subcommands:
//
//	serve  — train-or-load checkpoints, listen, and serve until killed
//	bench  — batched-vs-unbatched closed-loop benchmark (writes JSON)
//	smoke  — small end-to-end run asserting batched == unbatched outputs
//
// Examples:
//
//	easyscale-serve serve -addr 127.0.0.1:9090 -models neumf,mlp
//	easyscale-serve bench -requests 102400 -out BENCH_pr8.json
//	easyscale-serve smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		runServe(os.Args[2:])
	case "bench":
		runBench(os.Args[2:])
	case "smoke":
		runSmoke(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: easyscale-serve {serve|bench|smoke} [flags]")
	os.Exit(2)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func splitModels(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	modelsFlag := fs.String("models", "neumf,mlp", "comma-separated zoo models to deploy")
	steps := fs.Int("train-steps", 2, "training steps before each model's checkpoint is taken")
	seed := fs.Uint64("seed", 17, "training seed")
	maxBatch := fs.Int("max-batch", 32, "dynamic batching bound")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "flush deadline for a forming batch")
	capacity := fs.Int("capacity", 0, "total replica budget across deployments (0: unlimited)")
	idleTicks := fs.Int("idle-ticks", 5, "autoscale rounds before an idle model scales to zero (0: never)")
	scaleEvery := fs.Duration("scale-every", 50*time.Millisecond, "autoscaler interval (0: autoscaler off, 1 replica each)")
	die(fs.Parse(args))

	names := splitModels(*modelsFlag)
	containers, err := serve.TrainContainers(names, *steps, *seed)
	die(err)
	srv := serve.NewServer(serve.Options{
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		Capacity: *capacity, IdleTicks: *idleTicks,
	}, obs.New())
	for _, name := range names {
		die(srv.Deploy(name, containers[name], 1))
	}
	if *scaleEvery > 0 {
		stop := srv.StartAutoscaler(*scaleEvery)
		defer stop()
	}
	ln, err := net.Listen("tcp", *addr)
	die(err)
	fmt.Printf("serving %v on %s (max-batch %d, max-wait %v)\n", names, ln.Addr(), *maxBatch, *maxWait)
	srv.Serve(ln)
}

func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	modelsFlag := fs.String("models", "neumf,mlp", "comma-separated zoo models")
	requests := fs.Int("requests", 102400, "total requests per mode (rounded up to workers)")
	workers := fs.Int("workers", 64, "closed-loop workers per model")
	maxBatch := fs.Int("max-batch", 32, "batched mode's coalescing bound")
	out := fs.String("out", "", "write the outcome JSON here (default: stdout only)")
	die(fs.Parse(args))

	names := splitModels(*modelsFlag)
	perWorker := (*requests + len(names)**workers - 1) / (len(names) * *workers)
	outcome, err := serve.RunBench(serve.BenchConfig{
		Models: names, Workers: *workers, PerWorker: perWorker, MaxBatch: *maxBatch,
	}, nil)
	die(err)

	blob, err := json.MarshalIndent(outcome, "", "  ")
	die(err)
	fmt.Println(string(blob))
	if *out != "" {
		die(os.WriteFile(*out, append(blob, '\n'), 0o644))
	}
	if !outcome.ChecksumsEqual {
		die(fmt.Errorf("batched checksum %016x != unbatched %016x",
			outcome.Batched.Checksum, outcome.Unbatched.Checksum))
	}
	fmt.Printf("saturation speedup: %.2fx (%.0f vs %.0f req/s in-process); TCP end-to-end: %.2fx (%.0f vs %.0f req/s); checksums equal\n",
		outcome.SpeedupX, outcome.SaturationBatched.ThroughputRPS, outcome.SaturationUnbatched.ThroughputRPS,
		outcome.TCPSpeedupX, outcome.Batched.ThroughputRPS, outcome.Unbatched.ThroughputRPS)
}

// runSmoke is the `make serve-smoke` entry: a small two-model run that
// fails unless every request is answered and batched outputs are bitwise
// the unbatched ones.
func runSmoke(args []string) {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	requests := fs.Int("requests", 1024, "total requests per mode")
	die(fs.Parse(args))

	names := []string{"neumf", "mlp"}
	workers := 8
	perWorker := (*requests + len(names)*workers - 1) / (len(names) * workers)
	outcome, err := serve.RunBench(serve.BenchConfig{
		Models: names, Workers: workers, PerWorker: perWorker, MaxBatch: 16, TrainSteps: 1,
	}, nil)
	die(err)
	if outcome.Batched.Errors != 0 || outcome.Unbatched.Errors != 0 {
		die(fmt.Errorf("dropped requests: batched %d, unbatched %d",
			outcome.Batched.Errors, outcome.Unbatched.Errors))
	}
	if !outcome.ChecksumsEqual {
		die(fmt.Errorf("batched checksum %016x != unbatched %016x",
			outcome.Batched.Checksum, outcome.Unbatched.Checksum))
	}
	fmt.Printf("serve smoke ok: %d requests × 2 modes through %v, checksums equal (%016x)\n",
		outcome.Batched.Requests, names, outcome.Batched.Checksum)
}
