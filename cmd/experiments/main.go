// Command experiments regenerates the tables and figures of the paper's
// evaluation section. With no flags it runs everything at paper-comparable
// scale and prints each result block; use -exp to run one experiment and
// -quick for a fast pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	easyscale "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, table1, motivation, dws, fig1, fig2, fig3, fig4, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16")
	quick := flag.Bool("quick", false, "smaller workloads for a fast pass")
	outDir := flag.String("out", "", "directory to write each figure's curves as CSV (for plotting)")
	flag.Parse()

	epochs := 4
	fig9Steps := 30
	traceJobs := 100
	traceGap := 15.0
	seeds := []uint64{11, 12, 13}
	if *quick {
		epochs = 1
		fig9Steps = 8
		traceJobs = 30
		traceGap = 30
		seeds = []uint64{11}
	}

	runners := []struct {
		id  string
		run func() easyscale.Result
	}{
		{"table1", easyscale.Table1Workloads},
		{"motivation", func() easyscale.Result { return easyscale.MotivationRevocations(3000, 13) }},
		{"fig1", func() easyscale.Result { return easyscale.Fig01ServingLoad(3000, 42) }},
		{"fig2", func() easyscale.Result { return easyscale.Fig02AccuracyCurves("vgg19", epochs) }},
		{"fig3", func() easyscale.Result { return easyscale.Fig03PerClassVariance("vgg19", epochs) }},
		{"fig4", func() easyscale.Result { return easyscale.Fig04GammaTrend("vgg19", epochs) }},
		{"fig9", func() easyscale.Result { return easyscale.Fig09LossDiff("resnet50", fig9Steps) }},
		{"fig10", func() easyscale.Result { return easyscale.Fig10PackingVsEST("resnet50", 32, 16*1024) }},
		{"fig10b", func() easyscale.Result { return easyscale.Fig10PackingVsEST("shufflenetv2", 512, 32*1024) }},
		{"fig11", func() easyscale.Result { return easyscale.Fig11CtxSwitch(5) }},
		{"fig12", func() easyscale.Result { return easyscale.Fig12DeterminismOverhead(3) }},
		{"fig13", func() easyscale.Result { return easyscale.Fig13GradCopySync(3) }},
		{"fig14", func() easyscale.Result { return easyscale.Fig14TraceJCT(traceJobs, traceGap, seeds) }},
		{"fig15", func() easyscale.Result { return easyscale.Fig15AllocTimeline(traceJobs, traceGap, 11) }},
		{"fig16", func() easyscale.Result { return easyscale.Fig16Production(3000, 42) }},
		{"dws", func() easyscale.Result { return easyscale.DataWorkerSharing(8, 4) }},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		res := r.run()
		fmt.Println(res.String())
		if *outDir != "" && len(res.Series) > 0 {
			if err := writeCSV(*outDir, res); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// writeCSV stores one CSV per series: <out>/<figid>_<series-name>.csv with
// x,y rows — ready for any plotting tool.
func writeCSV(dir string, res easyscale.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := func(s string) string {
		s = strings.ToLower(s)
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				b.WriteRune(r)
			default:
				b.WriteByte('-')
			}
		}
		return strings.Trim(b.String(), "-")
	}
	for _, series := range res.Series {
		path := filepath.Join(dir, res.ID+"_"+slug(series.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "x,y")
		for i := range series.X {
			fmt.Fprintf(f, "%g,%g\n", series.X[i], series.Y[i])
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
