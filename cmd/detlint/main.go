// Command detlint enforces the repo's bitwise-determinism contract with five
// static analyzers (maporder, rawrand, walltime, chanorder, floatwiden) built
// on the standard library alone — see internal/analysis.
//
// Usage:
//
//	go run ./cmd/detlint ./...          # whole module
//	go run ./cmd/detlint internal/sched # packages under a directory
//	go run ./cmd/detlint -only maporder,walltime ./...
//
// Diagnostics are suppressible only via
// //detlint:ignore <analyzer> -- <reason>; any unsuppressed diagnostic (or
// malformed/dead directive) makes the exit status 1, which is how `make lint`
// fails CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-only a,b] [-list] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs := mod.Packages()
	if args := flag.Args(); len(args) > 0 && !isEverything(args) {
		pkgs = filterPackages(pkgs, args, root, cwd)
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		rel, err := filepath.Rel(cwd, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d unsuppressed diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// isEverything reports whether the patterns cover the whole module anyway.
func isEverything(args []string) bool {
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return true
		}
	}
	return false
}

// filterPackages keeps packages whose directory sits under one of the
// argument paths (a trailing /... is accepted and implied).
func filterPackages(pkgs []*analysis.Package, args []string, root, cwd string) []*analysis.Package {
	var dirs []string
	for _, a := range args {
		a = strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
		if a == "" || a == "." {
			a = cwd
		} else if !filepath.IsAbs(a) {
			a = filepath.Join(cwd, a)
		}
		dirs = append(dirs, filepath.Clean(a))
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, d := range dirs {
			if p.Dir == d || strings.HasPrefix(p.Dir, d+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
	os.Exit(2)
}
