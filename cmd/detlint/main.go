// Command detlint enforces the repo's determinism and resource-safety
// contracts with ten static analyzers built on the standard library alone —
// see internal/analysis. Five police bitwise determinism (maporder, rawrand,
// walltime, chanorder, floatwiden); five police the resource contracts
// (poolbalance, boundeddecode, deadlineio, spanbalance, hotalloc).
//
// Usage:
//
//	go run ./cmd/detlint ./...          # whole module
//	go run ./cmd/detlint internal/sched # packages under a directory
//	go run ./cmd/detlint -only maporder,walltime ./...
//	go run ./cmd/detlint -audit ./...   # list every //detlint:ignore site
//	go run ./cmd/detlint -json ./...    # machine-readable diagnostics
//
// Diagnostics are suppressible only via
// //detlint:ignore <analyzer> -- <reason>; any unsuppressed diagnostic (or
// malformed/dead directive) makes the exit status 1, which is how `make lint`
// fails CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	audit := flag.Bool("audit", false, "list every //detlint:ignore site with its analyzers and reason, then exit 0")
	asJSON := flag.Bool("json", false, "emit diagnostics (or -audit sites) as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-only a,b] [-list] [-audit] [-json] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs := mod.Packages()
	if args := flag.Args(); len(args) > 0 && !isEverything(args) {
		pkgs = filterPackages(pkgs, args, root, cwd)
	}

	relpath := func(abs string) string {
		rel, err := filepath.Rel(cwd, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return abs
		}
		return rel
	}

	if *audit {
		runAudit(pkgs, relpath, *asJSON)
		return
	}

	diags := analysis.Run(pkgs, analyzers)
	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relpath(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		emitJSON(out)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relpath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d unsuppressed diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// runAudit prints every //detlint:ignore site — the complete inventory of
// sanctioned contract exceptions — and exits 0 (auditing is a report, not a
// gate; malformed directives still fail the normal lint run).
func runAudit(pkgs []*analysis.Package, relpath func(string) string, asJSON bool) {
	sites := analysis.Audit(pkgs)
	if asJSON {
		type jsonSite struct {
			File      string   `json:"file"`
			Line      int      `json:"line"`
			Analyzers []string `json:"analyzers"`
			Reason    string   `json:"reason"`
			Malformed string   `json:"malformed,omitempty"`
		}
		out := make([]jsonSite, 0, len(sites))
		for _, s := range sites {
			out = append(out, jsonSite{
				File:      relpath(s.Pos.Filename),
				Line:      s.Pos.Line,
				Analyzers: s.Analyzers,
				Reason:    s.Reason,
				Malformed: s.Malformed,
			})
		}
		emitJSON(out)
		return
	}
	for _, s := range sites {
		if s.Malformed != "" {
			fmt.Printf("%s:%d: MALFORMED (%s)\n", relpath(s.Pos.Filename), s.Pos.Line, s.Malformed)
			continue
		}
		fmt.Printf("%s:%d: %s: %s\n", relpath(s.Pos.Filename), s.Pos.Line, strings.Join(s.Analyzers, ","), s.Reason)
	}
	fmt.Fprintf(os.Stderr, "detlint: %d ignore site(s)\n", len(sites))
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// isEverything reports whether the patterns cover the whole module anyway.
func isEverything(args []string) bool {
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return true
		}
	}
	return false
}

// filterPackages keeps packages whose directory sits under one of the
// argument paths (a trailing /... is accepted and implied).
func filterPackages(pkgs []*analysis.Package, args []string, root, cwd string) []*analysis.Package {
	var dirs []string
	for _, a := range args {
		a = strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
		if a == "" || a == "." {
			a = cwd
		} else if !filepath.IsAbs(a) {
			a = filepath.Join(cwd, a)
		}
		dirs = append(dirs, filepath.Clean(a))
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, d := range dirs {
			if p.Dir == d || strings.HasPrefix(p.Dir, d+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
	os.Exit(2)
}
