package easyscale

// Ablation benchmarks for the design choices DESIGN.md calls out: gradient
// bucket capacity, data-worker prefetch, EST count per GPU (host-side cost of
// time-slicing), the dropped determinism levels, and checkpoint size/time as
// the model grows. Run with:
//
//	go test -bench=Ablation -benchmem .

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
)

// BenchmarkAblationBucketCap sweeps the gradient-bucket capacity: smaller
// buckets mean more flatten/reduce/unflatten rounds per step.
func BenchmarkAblationBucketCap(b *testing.B) {
	for _, capElems := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("cap%d", capElems), func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.BatchPerEST = 4
			cfg.BucketCapElems = capElems
			j, err := core.NewJob(cfg, "electra")
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Attach(core.EvenPlacement(4, device.V100, device.V100)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.RunStep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDeterminismLevel compares the host-side engine cost of
// the determinism levels (the simulated-GPU overheads are the subject of
// Figure 12; this ablation isolates what the bookkeeping itself costs).
func BenchmarkAblationDeterminismLevel(b *testing.B) {
	for _, lv := range []struct {
		name  string
		level core.Determinism
		d2    bool
	}{
		{"none", core.DetNone, false},
		{"D0", core.D0, false},
		{"D1", core.D1, false},
		{"D1D2", core.D1, true},
	} {
		b.Run(lv.name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.BatchPerEST = 4
			cfg.Level, cfg.D2 = lv.level, lv.d2
			j, err := core.NewJob(cfg, "resnet50")
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Attach(core.EvenPlacement(4, device.V100)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.RunStep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationESTsPerGPU sweeps the EST count multiplexed on one GPU.
func BenchmarkAblationESTsPerGPU(b *testing.B) {
	for _, ests := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ests%d", ests), func(b *testing.B) {
			cfg := core.DefaultConfig(ests)
			cfg.BatchPerEST = 4
			j, err := core.NewJob(cfg, "electra")
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Attach(core.EvenPlacement(ests, device.V100)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.RunStep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrefetch sweeps the loader prefetch depth.
func BenchmarkAblationPrefetch(b *testing.B) {
	ds := data.NewSyntheticImages(1024, 10, 3, 8, 8, 1)
	for _, ahead := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("ahead%d", ahead), func(b *testing.B) {
			sampler := data.NewElasticSampler(ds.Len(), 4, 8, 1)
			loader := data.NewLoader(ds, sampler, 2, 1)
			steps := sampler.StepsPerEpoch()
			b.ResetTimer()
			epoch := 0
			for i := 0; i < b.N; i++ {
				step := i % steps
				if step == 0 && i > 0 {
					epoch++
					loader.SetEpoch(epoch)
				}
				for r := 0; r < 4; r++ {
					if ahead > 0 {
						loader.Prefetch(r, ahead)
					}
					loader.Batch(step, r)
				}
			}
		})
	}
}

// BenchmarkAblationScaleEvent measures the cost of a full elastic
// reconfiguration (checkpoint + restore + attach).
func BenchmarkAblationScaleEvent(b *testing.B) {
	cfg := core.DefaultConfig(4)
	cfg.BatchPerEST = 4
	j, err := core.NewJob(cfg, "bert")
	if err != nil {
		b.Fatal(err)
	}
	placements := []core.Placement{
		core.EvenPlacement(4, device.V100, device.V100),
		core.EvenPlacement(4, device.V100),
	}
	if err := j.Attach(placements[0]); err != nil {
		b.Fatal(err)
	}
	if err := j.RunSteps(2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Scale(placements[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}
